"""simlint (repro.lint): fixture-driven rule tests + integration.

Every rule gets a triggering snippet, a clean snippet, and a pragma
suppression; the cross-reference rules (KEY001/TRC001) additionally
get sandbox copies of the *real* source files with a seeded defect, so
the acceptance property — "deleting a field from the config_key chain
makes KEY001 fail" — is demonstrated against the shipped code, not a
toy fixture.
"""

import json
import shutil
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.experiments.cli import main as cli_main
from repro.lint import (
    RULES,
    SEV_ERROR,
    SEV_INFO,
    SEV_WARNING,
    all_rule_ids,
    run_lint,
)

SRC = Path(__file__).resolve().parent.parent / "src"


def lint_tree(tmp_path, files, rules=None):
    """Write fixture ``{relpath: source}`` under tmp_path and lint it."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return run_lint([str(tmp_path)], rules=rules)


def rule_ids(report):
    return [f.rule for f in report.findings]


# ---------------------------------------------------------------------------
# registry


def test_registry_has_the_documented_rules():
    assert set(all_rule_ids()) >= {
        "DET001", "DET002", "DET003", "DET004", "KEY001", "TRC001", "IMP001",
        "ERR001",
    }
    for rule in RULES.values():
        assert rule.summary
        assert rule.severity in (SEV_ERROR, SEV_WARNING, SEV_INFO)


def test_unknown_rule_selection_raises():
    with pytest.raises(KeyError):
        run_lint([str(SRC)], rules=["NOPE999"])


# ---------------------------------------------------------------------------
# DET001 — raw randomness


def test_det001_fires_on_stdlib_random(tmp_path):
    report = lint_tree(tmp_path, {
        "engine/gen.py": """\
            import random

            def jitter():
                return random.random()
            """,
    }, rules=["DET001"])
    assert rule_ids(report) == ["DET001"]
    assert report.findings[0].severity == SEV_ERROR
    assert "random.random" in report.findings[0].message


def test_det001_fires_on_numpy_convenience_and_generator(tmp_path):
    report = lint_tree(tmp_path, {
        "network/noise.py": """\
            import numpy as np

            def draw():
                gen = np.random.Generator(np.random.PCG64(1))
                return np.random.uniform(), gen
            """,
    }, rules=["DET001"])
    msgs = [f.message for f in report.findings]
    assert len(msgs) == 2
    assert any("numpy.random.Generator" in m for m in msgs)
    assert any("numpy.random.uniform" in m for m in msgs)


def test_det001_clean_on_seed_machinery_and_registry_streams(tmp_path):
    report = lint_tree(tmp_path, {
        "core/ok.py": """\
            import numpy as np

            def seeds(master):
                return np.random.SeedSequence([master, 1])

            def draw(registry, node):
                return registry.stream("gen", node).random()
            """,
    }, rules=["DET001"])
    assert report.findings == []


def test_det001_ignores_non_sim_critical_packages(tmp_path):
    report = lint_tree(tmp_path, {
        "tools/gen.py": "import random\n\nX = random.random()\n",
    }, rules=["DET001"])
    assert report.findings == []


def test_det001_line_pragma_suppresses(tmp_path):
    report = lint_tree(tmp_path, {
        "engine/gen.py": """\
            import random

            def jitter():
                # Seeded upstream; documented exception.
                return random.random()  # simlint: disable=DET001
            """,
    }, rules=["DET001"])
    assert report.findings == []


def test_det001_aliased_import_is_still_caught(tmp_path):
    report = lint_tree(tmp_path, {
        "faults/sneaky.py": """\
            from random import random as totally_deterministic

            def f():
                return totally_deterministic()
            """,
    }, rules=["DET001"])
    assert rule_ids(report) == ["DET001"]


# ---------------------------------------------------------------------------
# DET002 — wall clock


def test_det002_fires_on_event_path_clock_reads(tmp_path):
    report = lint_tree(tmp_path, {
        "network/slow.py": """\
            import time
            from time import perf_counter as clock

            def handle(ev):
                started = clock()
                ev.t = time.time()
                return started
            """,
    }, rules=["DET002"])
    msgs = [f.message for f in report.findings]
    assert len(msgs) == 2
    assert any("time.perf_counter" in m for m in msgs)
    assert any("time.time" in m for m in msgs)


def test_det002_allows_telemetry_packages(tmp_path):
    report = lint_tree(tmp_path, {
        "parallel/telemetry.py": """\
            import time

            def stamp():
                return time.perf_counter()
            """,
    }, rules=["DET002"])
    assert report.findings == []


def test_det002_file_pragma_suppresses(tmp_path):
    report = lint_tree(tmp_path, {
        "core/bench.py": """\
            # In-module microbenchmark harness, never on the event path.
            # simlint: disable-file=DET002
            import time

            def bench(fn):
                t0 = time.perf_counter()
                fn()
                return time.perf_counter() - t0
            """,
    }, rules=["DET002"])
    assert report.findings == []


# ---------------------------------------------------------------------------
# DET003 — unordered iteration


def test_det003_fires_on_set_and_keys_iteration(tmp_path):
    report = lint_tree(tmp_path, {
        "core/handlers.py": """\
            def drain(pending, tbl):
                for p in set(pending):
                    p.fire()
                for k in tbl.keys():
                    tbl[k] += 1
            """,
    }, rules=["DET003"])
    assert rule_ids(report) == ["DET003", "DET003"]
    assert all(f.severity == SEV_WARNING for f in report.findings)


def test_det003_fires_on_set_valued_names_and_comprehensions(tmp_path):
    report = lint_tree(tmp_path, {
        "traffic/pick.py": """\
            def pick(items):
                live = set(items)
                out = [x for x in live]
                return out
            """,
    }, rules=["DET003"])
    assert rule_ids(report) == ["DET003"]
    assert "live" in report.findings[0].message


def test_det003_clean_when_sorted_pins_the_order(tmp_path):
    report = lint_tree(tmp_path, {
        "core/handlers.py": """\
            def drain(pending, tbl):
                for p in sorted(set(pending)):
                    p.fire()
                for k in sorted(tbl.keys()):
                    tbl[k] += 1
                for k, v in tbl.items():
                    pass
                for lit in {"a": 1}.keys():
                    pass
            """,
    }, rules=["DET003"])
    assert report.findings == []


def test_det003_pragma_suppresses(tmp_path):
    report = lint_tree(tmp_path, {
        "core/handlers.py": """\
            def drain(pending):
                for p in set(pending):  # simlint: disable=DET003
                    p.fire()
            """,
    }, rules=["DET003"])
    assert report.findings == []


# ---------------------------------------------------------------------------
# DET004 — unordered float accumulation


def test_det004_fires_on_sum_over_sets(tmp_path):
    report = lint_tree(tmp_path, {
        "metrics/agg.py": """\
            def total(samples):
                return sum(set(samples))

            def weighted(samples):
                return sum(v * 0.5 for v in set(samples))
            """,
    }, rules=["DET004"])
    assert rule_ids(report) == ["DET004", "DET004"]


def test_det004_clean_on_ordered_iterables(tmp_path):
    report = lint_tree(tmp_path, {
        "metrics/agg.py": """\
            def total(samples):
                return sum(sorted(set(samples)))

            def plain(values):
                return sum(values) + sum(v * 2 for v in values)
            """,
    }, rules=["DET004"])
    assert report.findings == []


def test_det004_only_applies_to_metrics_and_core(tmp_path):
    report = lint_tree(tmp_path, {
        "experiments/agg.py": "def f(xs):\n    return sum(set(xs))\n",
    }, rules=["DET004"])
    assert report.findings == []


def test_det004_pragma_suppresses(tmp_path):
    report = lint_tree(tmp_path, {
        "metrics/agg.py": """\
            def total(samples):
                return sum(set(samples))  # simlint: disable=DET004
            """,
    }, rules=["DET004"])
    assert report.findings == []


# ---------------------------------------------------------------------------
# KEY001 — store-key drift


def test_key001_fires_on_handwritten_serializer_missing_a_field(tmp_path):
    report = lint_tree(tmp_path, {
        "config.py": """\
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class TransportConfig:
                window_packets: int = 32
                jitter_frac: float = 0.1
            """,
        "store.py": """\
            def transport_to_dict(cfg):
                return {"window_packets": cfg.window_packets}
            """,
    }, rules=["KEY001"])
    assert rule_ids(report) == ["KEY001"]
    assert "TransportConfig.jitter_frac" in report.findings[0].message


def test_key001_fires_on_asdict_pop_without_readd(tmp_path):
    report = lint_tree(tmp_path, {
        "config.py": """\
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class ExperimentConfig:
                cc: bool = True
                seed: int = 7
            """,
        "store.py": """\
            import dataclasses

            def config_to_dict(cfg):
                out = dataclasses.asdict(cfg)
                out.pop("seed", None)
                return out

            def config_key(cfg):
                import hashlib, json
                blob = json.dumps(config_to_dict(cfg), sort_keys=True)
                return hashlib.sha256(blob.encode()).hexdigest()[:16]
            """,
    }, rules=["KEY001"])
    assert rule_ids(report) == ["KEY001"]
    assert "ExperimentConfig.seed" in report.findings[0].message


def test_key001_fires_when_config_key_skips_config_to_dict(tmp_path):
    report = lint_tree(tmp_path, {
        "store.py": """\
            def config_to_dict(cfg):
                import dataclasses
                return dataclasses.asdict(cfg)

            def config_key(cfg):
                return str(hash(cfg))
            """,
    }, rules=["KEY001"])
    assert rule_ids(report) == ["KEY001"]
    assert "config_key" in report.findings[0].message


def test_key001_clean_on_complete_serializers(tmp_path):
    report = lint_tree(tmp_path, {
        "config.py": """\
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class TransportConfig:
                window_packets: int = 32
                jitter_frac: float = 0.1
            """,
        "store.py": """\
            def transport_to_dict(cfg):
                return {
                    "window_packets": cfg.window_packets,
                    "jitter_frac": cfg.jitter_frac,
                }
            """,
    }, rules=["KEY001"])
    assert report.findings == []


def test_key001_fires_on_cc_config_missing_params(tmp_path):
    report = lint_tree(tmp_path, {
        "cc/config.py": """\
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class CCConfig:
                mechanism: str = "ib"
                params: tuple = ()

            def cc_config_to_dict(cc):
                return {"mechanism": cc.mechanism}
            """,
    }, rules=["KEY001"])
    assert rule_ids(report) == ["KEY001"]
    assert "CCConfig.params" in report.findings[0].message


def test_key001_clean_on_complete_cc_config_serializer(tmp_path):
    report = lint_tree(tmp_path, {
        "cc/config.py": """\
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class CCConfig:
                mechanism: str = "ib"
                params: tuple = ()

            def cc_config_to_dict(cc):
                return {
                    "mechanism": cc.mechanism,
                    "params": dict(cc.params),
                }
            """,
    }, rules=["KEY001"])
    assert report.findings == []


def test_key001_pragma_suppresses(tmp_path):
    report = lint_tree(tmp_path, {
        "config.py": """\
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class TransportConfig:
                window_packets: int = 32
                debug_label: str = ""
            """,
        "store.py": """\
            def transport_to_dict(cfg):  # simlint: disable=KEY001
                # debug_label is display-only, deliberately keyless.
                return {"window_packets": cfg.window_packets}
            """,
    }, rules=["KEY001"])
    assert report.findings == []


# -- the acceptance property, against the real shipped sources ---------


REAL_KEY_FILES = (
    "repro/experiments/config.py",
    "repro/experiments/store.py",
    "repro/faults/spec.py",
    "repro/transport/config.py",
    "repro/cc/config.py",
)


def _copy_real(tmp_path, rels):
    for rel in rels:
        dst = tmp_path / rel
        dst.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(SRC / rel, dst)
    return tmp_path


def test_key001_clean_on_shipped_store_chain(tmp_path):
    sandbox = _copy_real(tmp_path, REAL_KEY_FILES)
    report = run_lint([str(sandbox)], rules=["KEY001"])
    assert report.findings == []


def test_key001_catches_field_deleted_from_real_config_key(tmp_path):
    """Dropping a field from the config_key chain must fail the lint."""
    sandbox = _copy_real(tmp_path, REAL_KEY_FILES)
    store = sandbox / "repro/experiments/store.py"
    text = store.read_text()
    marker = 'out.pop("faults", None)'
    assert marker in text
    store.write_text(
        text.replace(marker, marker + '\n    out.pop("seed", None)')
    )
    report = run_lint([str(sandbox)], rules=["KEY001"])
    assert [f.rule for f in report.findings] == ["KEY001"]
    assert "ExperimentConfig.seed" in report.findings[0].message


def test_key001_catches_new_unserialized_transport_field(tmp_path):
    """A new dataclass field that never reaches the serializer fails."""
    sandbox = _copy_real(tmp_path, REAL_KEY_FILES)
    cfg = sandbox / "repro/transport/config.py"
    text = cfg.read_text()
    marker = "    jitter_frac: float = 0.1"
    assert marker in text
    cfg.write_text(
        text.replace(marker, marker + "\n    brand_new_knob: int = 0")
    )
    report = run_lint([str(sandbox)], rules=["KEY001"])
    assert [f.rule for f in report.findings] == ["KEY001"]
    assert "TransportConfig.brand_new_knob" in report.findings[0].message


# ---------------------------------------------------------------------------
# TRC001 — trace-event coverage


TRC_FIXTURE = {
    "records.py": """\
        EV_A = "a"
        EV_B = "b"

        ALL_EVENTS = (EV_A, EV_B)
        """,
    "tracer.py": """\
        from records import EV_A, EV_B

        class Tracer:
            def a(self, t):
                self.emit((EV_A, t))

            def b(self, t):
                self.emit((EV_B, t))
        """,
    "auditor.py": """\
        from records import EV_A, EV_B

        class TraceAuditor:
            def observe(self, rec):
                if rec[0] == EV_A:
                    pass
                elif rec[0] == EV_B:
                    pass
        """,
}


def test_trc001_clean_on_fully_wired_events(tmp_path):
    report = lint_tree(tmp_path, dict(TRC_FIXTURE), rules=["TRC001"])
    assert report.findings == []


def test_trc001_fires_on_each_coverage_hole(tmp_path):
    fixture = dict(TRC_FIXTURE)
    fixture["records.py"] = """\
        EV_A = "a"
        EV_B = "b"
        EV_C = "c"

        ALL_EVENTS = (EV_A, EV_B)
        """
    report = lint_tree(tmp_path, fixture, rules=["TRC001"])
    messages = [f.message for f in report.findings]
    assert len(messages) == 3
    assert any("not listed in ALL_EVENTS" in m and "EV_C" in m for m in messages)
    assert any("no Tracer hook" in m and "EV_C" in m for m in messages)
    assert any("no handler" in m and "EV_C" in m for m in messages)


def test_trc001_catches_handler_removed_from_real_auditor(tmp_path):
    """Un-wiring EV_TIMER from the shipped auditor must fail the lint."""
    rels = ("repro/trace/records.py", "repro/trace/tracer.py",
            "repro/trace/auditor.py")
    sandbox = _copy_real(tmp_path, rels)
    auditor = sandbox / "repro/trace/auditor.py"
    text = auditor.read_text()
    marker = "(EV_CNP, EV_FECN, EV_TIMER, EV_END)"
    assert marker in text
    auditor.write_text(text.replace(marker, "(EV_CNP, EV_FECN, EV_END)"))
    report = run_lint([str(sandbox)], rules=["TRC001"])
    assert [f.rule for f in report.findings] == ["TRC001"]
    assert "EV_TIMER" in report.findings[0].message


def test_trc001_real_trace_package_is_clean():
    report = run_lint([str(SRC / "repro/trace")], rules=["TRC001"])
    assert report.findings == []


# ---------------------------------------------------------------------------
# SCH001 — scheduler-registry drift


def test_sch001_fires_when_cli_misses_a_scheduler(tmp_path):
    report = lint_tree(tmp_path, {
        "engine/scheduler.py": """\
            SCHEDULERS = {"heapq": object, "calendar": object, "splay": object}
            """,
        "experiments/cli.py": """\
            def build_parser(parser):
                parser.add_argument("--scheduler", choices=["heapq", "calendar"])
            """,
    }, rules=["SCH001"])
    assert rule_ids(report) == ["SCH001"]
    assert report.findings[0].severity == SEV_ERROR
    assert "'splay'" in report.findings[0].message


def test_sch001_fires_on_cli_choice_without_registry_entry(tmp_path):
    report = lint_tree(tmp_path, {
        "engine/scheduler.py": """\
            SCHEDULERS = {"heapq": object}
            """,
        "experiments/cli.py": """\
            def build_parser(parser):
                parser.add_argument("--scheduler", choices=["heapq", "calendar"])
            """,
    }, rules=["SCH001"])
    assert rule_ids(report) == ["SCH001"]
    assert "make_scheduler" in report.findings[0].message


def test_sch001_clean_when_registry_and_cli_agree(tmp_path):
    report = lint_tree(tmp_path, {
        "engine/scheduler.py": """\
            SCHEDULERS = {"heapq": object, "calendar": object}
            """,
        "experiments/cli.py": """\
            def build_parser(parser):
                parser.add_argument("--scheduler", choices=["heapq", "calendar"])
            """,
    }, rules=["SCH001"])
    assert report.findings == []


def test_sch001_silent_when_either_side_is_outside_scope(tmp_path):
    report = lint_tree(tmp_path, {
        "engine/scheduler.py": """\
            SCHEDULERS = {"heapq": object, "calendar": object}
            """,
    }, rules=["SCH001"])
    assert report.findings == []


def test_sch001_catches_choice_removed_from_real_cli(tmp_path):
    """Dropping calendar from the shipped CLI must fail the lint."""
    sandbox = _copy_real(
        tmp_path, ("repro/engine/scheduler.py", "repro/experiments/cli.py")
    )
    cli = sandbox / "repro/experiments/cli.py"
    text = cli.read_text()
    marker = 'choices=["heapq", "calendar"]'
    assert marker in text
    cli.write_text(text.replace(marker, 'choices=["heapq"]'))
    report = run_lint([str(sandbox)], rules=["SCH001"])
    assert [f.rule for f in report.findings] == ["SCH001"]
    assert "'calendar'" in report.findings[0].message


def test_sch001_clean_on_shipped_source():
    report = run_lint([str(SRC)], rules=["SCH001"])
    assert report.findings == []


# ---------------------------------------------------------------------------
# IMP001 — unused imports


def test_imp001_fires_on_unused_imports(tmp_path):
    report = lint_tree(tmp_path, {
        "experiments/driver.py": """\
            import os
            from typing import List, Optional

            def f(x: Optional[int]):
                return x
            """,
    }, rules=["IMP001"])
    assert rule_ids(report) == ["IMP001", "IMP001"]
    assert all(f.severity == SEV_INFO for f in report.findings)
    messages = " ".join(f.message for f in report.findings)
    assert "os" in messages and "List" in messages


def test_imp001_skips_init_reexports_and_future(tmp_path):
    report = lint_tree(tmp_path, {
        "pkg/__init__.py": "from pkg.mod import thing\n",
        "pkg/mod.py": "from __future__ import annotations\n\nthing = 1\n",
    }, rules=["IMP001"])
    assert report.findings == []


# ---------------------------------------------------------------------------
# ERR001 — swallowed exceptions


def test_err001_fires_on_bare_except_and_broad_pass(tmp_path):
    report = lint_tree(tmp_path, {
        "parallel/runtime.py": """\
            def f():
                try:
                    risky()
                except:
                    cleanup()
                try:
                    risky()
                except Exception:
                    pass
                try:
                    risky()
                except (ValueError, BaseException):
                    ...
            """,
    }, rules=["ERR001"])
    assert rule_ids(report) == ["ERR001", "ERR001", "ERR001"]
    assert all(f.severity == SEV_ERROR for f in report.findings)


def test_err001_clean_on_specific_and_handled_exceptions(tmp_path):
    report = lint_tree(tmp_path, {
        "parallel/runtime.py": """\
            def f(log):
                try:
                    risky()
                except OSError:
                    pass
                try:
                    risky()
                except Exception as exc:
                    log.warning("cell failed: %s", exc)
                    raise
                try:
                    risky()
                except Exception:
                    return None
            """,
    }, rules=["ERR001"])
    assert report.findings == []


def test_err001_pragma_suppresses(tmp_path):
    report = lint_tree(tmp_path, {
        "parallel/runtime.py": """\
            def f():
                try:
                    risky()
                # last-ditch teardown guard:
                except Exception:  # simlint: disable=ERR001
                    pass
            """,
    }, rules=["ERR001"])
    assert report.findings == []


def test_err001_shipped_tree_is_clean():
    report = run_lint([str(SRC / "repro")], rules=["ERR001"])
    assert report.findings == [], report.format()


# ---------------------------------------------------------------------------
# ERR002 — dropped asyncio task handles (serve packages)


def test_err002_fires_on_dropped_create_task(tmp_path):
    report = lint_tree(tmp_path, {
        "serve/app.py": """\
            import asyncio

            async def f(loop):
                asyncio.create_task(pump())
                loop.create_task(pump())
                asyncio.ensure_future(pump())
            """,
    }, rules=["ERR002"])
    assert rule_ids(report) == ["ERR002", "ERR002", "ERR002"]
    assert all(f.severity == SEV_ERROR for f in report.findings)


def test_err002_clean_on_kept_awaited_or_collected_handles(tmp_path):
    report = lint_tree(tmp_path, {
        "serve/app.py": """\
            import asyncio

            async def f(tasks):
                t = asyncio.create_task(pump())
                tasks.append(asyncio.create_task(pump()))
                await asyncio.create_task(pump())
                return t
            """,
    }, rules=["ERR002"])
    assert report.findings == []


def test_err002_only_scopes_async_packages(tmp_path):
    # Outside the serve packages the rule stays silent — batch drivers
    # have no event loop whose weak references could drop a task.
    report = lint_tree(tmp_path, {
        "parallel/driver.py": """\
            import asyncio

            async def f():
                asyncio.create_task(pump())
            """,
    }, rules=["ERR002"])
    assert report.findings == []


def test_err002_pragma_suppresses(tmp_path):
    report = lint_tree(tmp_path, {
        "serve/app.py": """\
            import asyncio

            async def f():
                # deliberate fire-and-forget: loop lifetime exceeds task
                asyncio.create_task(pump())  # simlint: disable=ERR002
            """,
    }, rules=["ERR002"])
    assert report.findings == []


def test_err002_shipped_serve_tree_is_clean():
    report = run_lint([str(SRC / "repro" / "serve")], rules=["ERR002"])
    assert report.findings == [], report.format()


# ---------------------------------------------------------------------------
# engine behavior


def test_parse_error_is_a_finding_not_a_crash(tmp_path):
    report = lint_tree(tmp_path, {"engine/broken.py": "def f(:\n    pass\n"})
    assert [f.rule for f in report.findings] == ["PARSE001"]
    assert report.exit_code() == 1


def test_exit_code_policy(tmp_path):
    warn_only = lint_tree(tmp_path, {
        "core/handlers.py": "def f(s):\n    for x in set(s):\n        pass\n",
    }, rules=["DET003"])
    assert warn_only.exit_code() == 0
    assert warn_only.exit_code(strict=True) == 1


def test_json_report_schema(tmp_path):
    report = lint_tree(tmp_path, {
        "engine/gen.py": "import random\nX = random.random()\n",
    }, rules=["DET001"])
    data = json.loads(json.dumps(report.to_json_dict()))
    assert data["version"] == 2
    assert data["files_checked"] == 1
    assert data["rules_run"] == ["DET001"]
    assert data["summary"] == {
        "errors": 1, "warnings": 0, "info": 0,
        "baselined": 0, "out_of_scope": 0,
    }
    (finding,) = data["findings"]
    assert set(finding) == {
        "rule", "severity", "path", "line", "col", "message", "fingerprint",
    }
    assert finding["fingerprint"]
    assert finding["rule"] == "DET001"
    assert finding["line"] == 2


def test_findings_are_sorted_and_deterministic(tmp_path):
    files = {
        "engine/b.py": "import random\nX = random.random()\nY = random.random()\n",
        "engine/a.py": "import random\nZ = random.random()\n",
    }
    first = lint_tree(tmp_path / "one", dict(files))
    second = lint_tree(tmp_path / "two", dict(files))
    assert [f.sort_key[1:] for f in first.findings] == \
        [f.sort_key[1:] for f in second.findings]
    paths = [f.path for f in first.findings]
    assert paths == sorted(paths)


# ---------------------------------------------------------------------------
# CLI + integration


def test_cli_lint_shipped_tree_is_clean(capsys):
    assert cli_main(["lint", str(SRC), "--strict"]) == 0
    out = capsys.readouterr().out
    assert "0 error(s), 0 warning(s)" in out


def test_cli_lint_fails_on_seeded_defect(tmp_path, capsys):
    bad = tmp_path / "engine" / "gen.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import random\nX = random.random()\n")
    assert cli_main(["lint", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out


def test_cli_lint_json_and_artifact(tmp_path, capsys):
    out_file = tmp_path / "findings.json"
    code = cli_main([
        "lint", str(SRC / "repro" / "lint"), "--json",
        "--json-out", str(out_file),
    ])
    assert code == 0
    stdout = capsys.readouterr().out
    assert json.loads(stdout)["summary"]["errors"] == 0
    assert json.loads(out_file.read_text())["version"] == 2


def test_cli_lint_list_rules(capsys):
    assert cli_main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rid in ("DET001", "DET002", "DET003", "DET004", "KEY001", "TRC001"):
        assert rid in out


def test_cli_lint_rejects_unknown_rule_and_missing_path(tmp_path, capsys):
    assert cli_main(["lint", "--rule", "NOPE999", str(SRC)]) == 2
    assert cli_main(["lint", str(tmp_path / "missing")]) == 2


@pytest.mark.slow
def test_module_entrypoint_lint_runs_clean():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", str(SRC)],
        capture_output=True, text=True,
        cwd=str(SRC.parent),
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
