"""Tests for network construction and wiring invariants."""

import pytest

from repro.engine import Simulator
from repro.metrics import Collector
from repro.network import Network, NetworkConfig
from repro.topology import sun_dcs_648, three_stage_fat_tree


class TestWiring:
    def _net(self, radix=4):
        sim = Simulator()
        topo = three_stage_fat_tree(radix)
        return Network(sim, topo, NetworkConfig(), collector=Collector(topo.n_hosts))

    def test_every_output_port_has_a_peer_where_cabled(self):
        net = self._net()
        topo = net.topology
        cabled = set()
        for hl in topo.host_links:
            cabled.add((hl.switch_id, hl.switch_port))
        for sl in topo.switch_links:
            cabled.add((sl.switch_a, sl.port_a))
            cabled.add((sl.switch_b, sl.port_b))
        for sw in net.switches:
            for port_idx, out in enumerate(sw.output_ports):
                if (sw.node_id, port_idx) in cabled:
                    assert out.peer is not None

    def test_initial_credits_equal_downstream_capacity(self):
        net = self._net()
        for hca in net.hcas:
            att = net.topology.host_attachment(hca.node_id)
            ibuf = net.switches[att.switch_id].input_ports[att.switch_port]
            assert hca.obuf.credits == [float(ibuf.capacity)] * net.config.n_vls

    def test_switch_to_hca_credits(self):
        net = self._net()
        for hl in net.topology.host_links:
            out = net.switches[hl.switch_id].output_ports[hl.switch_port]
            assert out.credits[0] == float(net.hcas[hl.host_id].input_port.capacity)

    def test_credit_delay_matches_propagation(self):
        net = self._net()
        prop = net.config.link.prop_delay_ns
        for sw in net.switches:
            for ip in sw.input_ports:
                if ip.upstream is not None:
                    assert ip.credit_delay_ns == prop

    def test_lfts_installed(self):
        net = self._net()
        for sw, lft in zip(net.switches, net.topology.lfts):
            assert sw.lft is lft

    def test_collector_attached_to_all_hcas(self):
        net = self._net()
        assert all(h.metrics is net.collector for h in net.hcas)

    def test_topology_validated_on_build(self):
        from repro.topology.spec import HostLink, SwitchSpec, Topology

        bad = Topology(
            n_hosts=1,
            switches=[SwitchSpec(0, 2)],
            host_links=[HostLink(0, 0, 5)],  # port out of range
            switch_links=[],
            lfts=[[0]],
        )
        with pytest.raises(ValueError):
            Network(Simulator(), bad, NetworkConfig())

    def test_full_648_constructs(self):
        sim = Simulator()
        topo = sun_dcs_648()
        net = Network(sim, topo, NetworkConfig(), collector=Collector(648))
        assert len(net.hcas) == 648
        assert len(net.switches) == 54
        # Spot-check a spine port's wiring: spine 0 port 7 faces leaf 7.
        spine0 = net.switches[36]
        leaf7 = net.switches[7]
        hosts_per_leaf = topo.meta["hosts_per_leaf"]
        assert spine0.output_ports[7].peer is leaf7.input_ports[hosts_per_leaf + 0]

    def test_idle_network_executes_no_events(self):
        net = self._net()
        net.run(until=1e6)
        assert net.sim.events_executed == 0
        assert net.total_buffered_bytes() == 0
