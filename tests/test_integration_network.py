"""End-to-end datapath integration tests (no CC)."""

import pytest

from repro.engine import RngRegistry, Simulator
from repro.metrics import Collector, jain_fairness
from repro.network import HcaConfig, Network, NetworkConfig
from repro.topology import three_stage_fat_tree

from tests.conftest import attach_fixed_flow, attach_hotspot_contributors, build_network


MS = 1e6  # ns


class TestSingleFlow:
    def test_throughput_equals_injection_rate(self):
        sim = Simulator()
        net, col, _ = build_network(sim)
        rng = RngRegistry(1)
        attach_fixed_flow(net, rng, src=0, dst=7, rate_gbps=10.0)
        net.run(until=2 * MS)
        assert col.rx_rate_gbps(7, 2 * MS) == pytest.approx(10.0, rel=0.02)

    def test_local_pair_same_leaf(self):
        sim = Simulator()
        net, col, _ = build_network(sim)
        attach_fixed_flow(net, RngRegistry(1), src=0, dst=1, rate_gbps=5.0)
        net.run(until=2 * MS)
        assert col.rx_rate_gbps(1, 2 * MS) == pytest.approx(5.0, rel=0.02)

    def test_full_injection_rate_sustained(self):
        sim = Simulator()
        net, col, _ = build_network(sim)
        attach_fixed_flow(net, RngRegistry(1), src=0, dst=5, rate_gbps=13.5)
        net.run(until=2 * MS)
        # 13.5 in, sink cap 13.6: delivery matches injection.
        assert col.rx_rate_gbps(5, 2 * MS) == pytest.approx(13.5, rel=0.02)

    def test_no_packet_loss(self):
        sim = Simulator()
        net, col, _ = build_network(sim)
        attach_fixed_flow(net, RngRegistry(1), src=0, dst=7, rate_gbps=13.5)
        net.run(until=2 * MS)
        in_flight = net.total_buffered_bytes()
        # Everything sent is either delivered or still buffered.
        assert col.tx_bytes[0] >= col.rx_bytes[7]
        assert (col.tx_bytes[0] - col.rx_bytes[7]) * 0.8 <= in_flight + 3 * 4156 + 8192 * 3


class TestHotspotWithoutCc:
    def test_sink_cap_limits_hotspot(self):
        sim = Simulator()
        net, col, _ = build_network(sim)
        attach_hotspot_contributors(net, RngRegistry(1), hotspot=0, contributors=range(1, 8))
        net.run(until=4 * MS)
        # Offered 7 x 13.5 = 94.5; received = sink cap (within tolerance
        # of the receive pipeline).
        assert col.rx_rate_gbps(0, 4 * MS) == pytest.approx(13.6, rel=0.05)

    def test_parking_lot_unfairness_without_cc(self):
        # Multi-stage round-robin gives hotspot-leaf-local contributors
        # a full arbitration share while remote contributors split one
        # spine input: the classic parking-lot problem (paper ref [7]).
        sim = Simulator()
        net, _, _ = build_network(sim)
        col = Collector(net.topology.n_hosts, warmup_ns=1 * MS, track_pairs=True)
        net.collector = col
        for hca in net.hcas:
            hca.metrics = col
        attach_hotspot_contributors(net, RngRegistry(1), hotspot=0, contributors=range(1, 8))
        net.run(until=5 * MS)
        per_flow = [col.rx_by_src.get((s, 0), 0) for s in range(1, 8)]
        local = per_flow[:1]   # host 1 shares the hotspot's leaf (radix 4)
        remote = per_flow[1:]  # hosts 2-7 arrive through one spine port
        assert min(local) > 2 * max(remote)
        assert jain_fairness(per_flow) < 0.7

    def test_victim_suffers_hol_blocking(self):
        # Radix 8: hotspot 0 on leaf 0; contributors 2..6 include hosts
        # 4-6 on leaf 1, whose uplink to spine 0 (hotspot 0 mod 4)
        # saturates. Victim host 7 (also leaf 1) sends to host 8, which
        # routes through the same congested uplink (8 mod 4 == 0) to an
        # otherwise idle destination - pure HOL blocking.
        sim = Simulator()
        net, col, _ = build_network(sim, radix=8)
        rng = RngRegistry(1)
        attach_hotspot_contributors(net, rng, hotspot=0, contributors=range(2, 7))
        attach_fixed_flow(net, rng, src=7, dst=8, rate_gbps=13.5)
        net.run(until=4 * MS)
        victim_rate = col.rx_rate_gbps(8, 4 * MS)
        assert victim_rate < 13.5 * 0.6  # victim visibly HOL-blocked


class TestMultiVl:
    def test_vl_isolation_under_congestion(self):
        # Traffic on VL1 (the CNP VL) is not blocked by VL0 congestion.
        sim = Simulator()
        net, col, _ = build_network(sim)
        rng = RngRegistry(1)
        attach_hotspot_contributors(net, rng, hotspot=0, contributors=range(2, 8))
        net.run(until=2 * MS)
        hca = net.hcas[1]
        hca.send_cnp(6)  # rides VL1 through the congested fabric
        before = sim.now
        net.run(until=before + 0.2 * MS)
        assert col.control_rx >= 1


class TestNetworkConfigValidation:
    def test_vl_mismatch_rejected(self):
        with pytest.raises(ValueError, match="n_vls"):
            NetworkConfig(hca=HcaConfig(n_vls=2, cnp_vl=1), n_vls=3)

    def test_repr(self):
        sim = Simulator()
        net, _, _ = build_network(sim)
        assert "hosts" in repr(net)
