"""Golden trace-digest regression suite.

Each golden fixture pins the full event stream of a quick-scale paper
scenario to a 16-hex digest (``tests/golden/digests.json``). A digest
mismatch means the simulator's packet-level behavior changed — either
a bug or an intentional dynamics change. For intentional changes,
refresh the fixtures::

    PYTHONPATH=src python -m pytest tests/test_golden_digests.py --update-golden

and commit the new ``digests.json`` together with the change that
explains it. On mismatch the failing cells are re-run with JSONL
tracing into ``test-artifacts/traces/`` so CI can upload the replayable
streams for diffing (see ``.github/workflows/ci.yml``).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.experiments.config import SCALES, ExperimentConfig
from repro.experiments.runner import TracedRun, config_slug, run_experiment
from repro.experiments.table2 import run_table2
from repro.experiments.windy import run_windy_figure
from repro.trace import TraceSpec

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden", "digests.json")
ARTIFACT_DIR = os.path.join("test-artifacts", "traces")


def _load_goldens() -> dict:
    if not os.path.exists(GOLDEN_PATH):
        return {}
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


def _store_goldens(updates: dict) -> None:
    goldens = _load_goldens()
    goldens.update(updates)
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    with open(GOLDEN_PATH, "w") as fh:
        json.dump(dict(sorted(goldens.items())), fh, indent=2, sort_keys=True)
        fh.write("\n")


def _check_goldens(results, update_golden: bool) -> None:
    """Compare each traced result against its golden digest."""
    observed = {config_slug(r.config): r for r in results}
    assert len(observed) == len(results), "config slugs must be unique"
    for slug, res in observed.items():
        assert res.trace_violations == 0, (
            f"{slug}: trace auditor reported {res.trace_violations} "
            "invariant violation(s)"
        )
    if update_golden:
        _store_goldens(
            {slug: res.trace_digest for slug, res in observed.items()}
        )
        return
    goldens = _load_goldens()
    mismatched = []
    for slug, res in observed.items():
        want = goldens.get(slug)
        if want is None:
            mismatched.append(f"{slug}: no golden recorded (got {res.trace_digest})")
        elif res.trace_digest != want:
            mismatched.append(
                f"{slug}: digest {res.trace_digest} != golden {want}"
            )
    if mismatched:
        # Dump replayable JSONL traces of the failing cells so a CI run
        # can upload them as artifacts for offline diffing.
        spec = TraceSpec(jsonl_dir=ARTIFACT_DIR)
        for line in mismatched:
            slug = line.split(":", 1)[0]
            run_experiment(observed[slug].config, trace=spec)
        pytest.fail(
            "golden digest mismatch — behavior changed at the event level "
            "(JSONL traces dumped to {}; rerun with --update-golden if "
            "intentional):\n  {}".format(ARTIFACT_DIR, "\n  ".join(mismatched))
        )


@pytest.mark.slow
def test_table2_quick_golden(update_golden):
    table = run_table2("quick", seed=7, run_fn=TracedRun())
    _check_goldens(
        [
            table.baseline_no_cc,
            table.baseline_cc,
            table.hotspots_no_cc,
            table.hotspots_cc,
        ],
        update_golden,
    )


@pytest.mark.slow
def test_windy_quick_golden(update_golden):
    fig = run_windy_figure(
        1.0, "quick", p_values=[0.6], seed=7, run_fn=TracedRun()
    )
    point = fig.points[0]
    _check_goldens([point.off, point.on], update_golden)


# ----------------------------------------------------------------------
# Kernel-choice invariance: the event-queue implementation and the
# packet flyweight pool are performance knobs, never behavioral ones.
# Every (scheduler, pool) combination must reproduce the SAME pinned
# digest per scenario — one golden key shared by all four combos, so
# any divergence between combos fails loudly. The full-length golden
# cells above run under ``REPRO_SCHEDULER=calendar`` in CI's
# kernel-differential job; these short cells keep the 4-way matrix
# affordable inside the regular suite.
# ----------------------------------------------------------------------

def _kernel_cell(**overrides) -> ExperimentConfig:
    """A seconds-scale slice of the Table II CC-on hotspot cell."""
    return ExperimentConfig(
        scale=SCALES["quick"], b_fraction=0.0, c_fraction_of_rest=0.8,
        seed=7, name="table2", cc=True, sim_time_ns=2e6, warmup_ns=0.5e6,
        **overrides,
    )


#: Scenario key -> config overrides. Keys double as golden-fixture ids.
KERNEL_CELLS = {
    "kernel-quick-hotspot-cc": {},
    "kernel-quick-silent-cc": {"contributors_active": False},
    "kernel-quick-moving-cc": {"hotspot_lifetime_ns": 1e6},
}

KERNEL_COMBOS = [
    pytest.param("heapq", "1", id="heapq-pool"),
    pytest.param("heapq", "0", id="heapq-nopool"),
    pytest.param("calendar", "1", id="calendar-pool"),
    pytest.param("calendar", "0", id="calendar-nopool"),
]


@pytest.mark.slow
@pytest.mark.parametrize("sched,pool", KERNEL_COMBOS)
def test_kernel_choices_never_move_digests(update_golden, monkeypatch, sched, pool):
    monkeypatch.setenv("REPRO_SCHEDULER", sched)
    monkeypatch.setenv("REPRO_PACKET_POOL", pool)
    observed = {}
    for key, overrides in KERNEL_CELLS.items():
        res = run_experiment(_kernel_cell(**overrides), trace=True)
        assert res.trace_violations == 0, (
            f"{key} [{sched},pool={pool}]: {res.trace_violations} "
            "invariant violation(s)"
        )
        observed[key] = res.trace_digest
    if update_golden:
        _store_goldens(observed)
        return
    goldens = _load_goldens()
    mismatched = [
        f"{key}: digest {digest} != golden {goldens.get(key)}"
        for key, digest in observed.items()
        if digest != goldens.get(key)
    ]
    assert not mismatched, (
        f"scheduler={sched} pool={pool} moved the event stream "
        "(kernel choices must be behavior-free):\n  " + "\n  ".join(mismatched)
    )
