"""Cross-cutting invariant checks under randomized scenarios."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CCManager, CCParams
from repro.engine import RngRegistry, Simulator
from repro.metrics import Collector
from repro.network import Network, NetworkConfig
from repro.network.packet import Packet
from repro.topology import three_stage_fat_tree
from repro.traffic import BNodeSource, HotspotSchedule


class FlagAuditor(Collector):
    """Collector that also audits packet-flag invariants at delivery."""

    def __init__(self, n_nodes, **kw):
        super().__init__(n_nodes, **kw)
        self.violations = []

    def record_rx(self, node, pkt: Packet, now):
        if pkt.is_control and pkt.fecn:
            self.violations.append("control packet carries FECN")
        if pkt.is_control and not pkt.becn:
            self.violations.append("control packet without BECN")
        if not pkt.is_control and pkt.becn:
            self.violations.append("data packet carries BECN")
        if pkt.dst != node:
            self.violations.append(f"misdelivery: {pkt} arrived at {node}")
        super().record_rx(node, pkt, now)


def random_scenario(seed: int, p: float, cc: bool, horizon_ns: float = 8e5):
    topo = three_stage_fat_tree(4)
    sim = Simulator()
    rng = RngRegistry(seed)
    col = FlagAuditor(topo.n_hosts, warmup_ns=0.0)
    net = Network(sim, topo, NetworkConfig(), collector=col)
    if cc:
        CCManager(
            CCParams.paper_table1().with_(cct_slope=0.5, marking_rate=3)
        ).install(net)
    schedule = HotspotSchedule.choose_initial(2, topo.n_hosts, rng.stream("hs"))
    for node in range(topo.n_hosts):
        if node in schedule.current_targets:
            continue
        gen = BNodeSource(
            node, topo.n_hosts, p, rng.stream("gen", node),
            hotspot=(lambda s=schedule, k=node % 2: s.target(k)) if p > 0 else None,
        )
        gen.bind(net.hcas[node])
        net.hcas[node].attach_generator(gen)
    net.run(until=horizon_ns)
    return net, col


class TestFlagInvariants:
    @given(
        seed=st.integers(min_value=0, max_value=5000),
        p=st.sampled_from([0.0, 0.5, 1.0]),
    )
    @settings(max_examples=8, deadline=None)
    def test_packet_flags_always_consistent(self, seed, p):
        _, col = random_scenario(seed, p, cc=True)
        assert col.violations == []


class TestRateInvariants:
    @given(seed=st.integers(min_value=0, max_value=5000), cc=st.booleans())
    @settings(max_examples=8, deadline=None)
    def test_no_node_receives_above_sink_cap(self, seed, cc):
        _, col = random_scenario(seed, 1.0, cc)
        horizon = 8e5
        for node in range(col.n_nodes):
            # Allow the in-flight pipeline to round one packet up.
            assert col.rx_bytes[node] * 8 / horizon <= 13.6 * 1.05

    @given(seed=st.integers(min_value=0, max_value=5000))
    @settings(max_examples=5, deadline=None)
    def test_cc_never_reduces_delivery_below_half(self, seed):
        # CC must never collapse a congested network's total delivery —
        # a broad "does no catastrophic harm" invariant.
        _, off = random_scenario(seed, 0.8, cc=False)
        _, on = random_scenario(seed, 0.8, cc=True)
        assert sum(on.rx_bytes) > 0.5 * sum(off.rx_bytes)


class TestBufferInvariants:
    @given(seed=st.integers(min_value=0, max_value=5000))
    @settings(max_examples=5, deadline=None)
    def test_occupancy_within_capacity_throughout(self, seed):
        # Any violation raises inside deliver(); reaching the end of a
        # congested run means flow control never over-committed.
        net, _ = random_scenario(seed, 1.0, cc=True)
        for sw in net.switches:
            for ip in sw.input_ports:
                for vl, occ in enumerate(ip.occupancy):
                    assert 0 <= occ <= ip.capacity
