"""Tests for repro.faults: specs, chaos expansion, and live injection."""

from __future__ import annotations

import json

import pytest

from repro.engine import RngRegistry, Simulator
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.faults import (
    ChaosSpec,
    FaultInjector,
    FaultSchedule,
    FaultSpec,
    chaos_schedule,
    faults_from_dict,
    faults_to_dict,
)
from repro.network.deadlock import DeadlockWatchdog
from repro.topology import three_stage_fat_tree
from repro.trace import TraceSpec
from repro.trace.auditor import TraceAuditor

from tests.conftest import (
    MICRO_SCALE,
    attach_fixed_flow,
    attach_hotspot_contributors,
    build_network,
)

MS = 1e6


def micro_cfg(**kw):
    return ExperimentConfig(
        scale=MICRO_SCALE, seed=3, sim_time_ns=1e6, warmup_ns=3e5, **kw
    )


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("meteor_strike", 1.0)

    def test_negative_times_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("switch_pause", -1.0, switch=0)
        with pytest.raises(ValueError):
            FaultSpec("switch_pause", 1.0, duration_ns=-1.0, switch=0)

    def test_link_kind_needs_exactly_one_target(self):
        with pytest.raises(ValueError):  # neither
            FaultSpec("link_down", 1.0)
        with pytest.raises(ValueError):  # both
            FaultSpec("link_down", 1.0, switch=0, port=2, node=1)
        FaultSpec("link_down", 1.0, switch=0, port=2)
        FaultSpec("link_down", 1.0, node=3)

    def test_switch_pause_needs_switch(self):
        with pytest.raises(ValueError):
            FaultSpec("switch_pause", 1.0)

    def test_value_ranges(self):
        with pytest.raises(ValueError):  # rate factor 0 would stall forever
            FaultSpec("degrade", 1.0, switch=0, port=2, value=0.0)
        with pytest.raises(ValueError):
            FaultSpec("cnp_drop", 1.0, node=0, value=1.5)
        with pytest.raises(ValueError):
            FaultSpec("cnp_delay", 1.0, node=0, value=-5.0)

    def test_flap_needs_duration(self):
        with pytest.raises(ValueError):
            FaultSpec.link_flap(1.0, 0.0, node=0)

    def test_ends_at(self):
        assert FaultSpec("switch_pause", 5.0, switch=0).ends_at_ns is None
        assert FaultSpec("switch_pause", 5.0, 3.0, switch=0).ends_at_ns == 8.0


class TestSerialization:
    def test_schedule_round_trip(self, tmp_path):
        sched = FaultSchedule([
            FaultSpec.link_flap(1e5, 2e5, switch=0, port=2),
            FaultSpec("cnp_drop", 3e5, 1e5, value=0.5),
        ])
        assert FaultSchedule.from_json(sched.to_json()) == sched
        path = tmp_path / "faults.json"
        path.write_text(sched.to_json())
        assert FaultSchedule.load(str(path)) == sched

    def test_plan_dispatch(self):
        chaos = ChaosSpec(seed=9, link_flap=0.1)
        assert faults_from_dict(faults_to_dict(chaos)) == chaos
        assert faults_from_dict(None) is None
        assert faults_to_dict(None) is None
        with pytest.raises(ValueError, match="unknown fault plan type"):
            faults_from_dict({"type": "werewolf"})

    def test_schedule_is_hashable_and_extendable(self):
        base = FaultSchedule()
        assert base.empty and len(base) == 0
        grown = base.extended(FaultSpec("timer_freeze", 1.0))
        assert len(grown) == 1 and hash(grown) == hash(grown)


class TestChaosSchedule:
    def test_same_seed_same_schedule(self):
        spec = ChaosSpec(seed=5, link_flap=0.5, degrade=0.5, cnp_drop=0.5,
                         timer_freeze=0.5, switch_pause=0.5)
        topo = three_stage_fat_tree(4)
        a = chaos_schedule(spec, topology=topo, sim_time_ns=8 * MS)
        b = chaos_schedule(spec, topology=topo, sim_time_ns=8 * MS)
        assert a == b and not a.empty

    def test_different_seed_differs(self):
        topo = three_stage_fat_tree(4)
        kw = dict(topology=topo, sim_time_ns=8 * MS)
        a = chaos_schedule(ChaosSpec(seed=1, link_flap=1.0), **kw)
        b = chaos_schedule(ChaosSpec(seed=2, link_flap=1.0), **kw)
        assert a != b

    def test_empty_spec_expands_empty(self):
        assert ChaosSpec(seed=1).empty
        sched = chaos_schedule(
            ChaosSpec(seed=1), topology=three_stage_fat_tree(4), sim_time_ns=MS
        )
        assert sched.empty

    def test_events_inside_run_and_valid(self):
        spec = ChaosSpec(seed=3, link_flap=1.0, degrade=1.0, cnp_drop=1.0,
                         timer_freeze=1.0, switch_pause=1.0)
        sched = chaos_schedule(
            spec, topology=three_stage_fat_tree(4), sim_time_ns=8 * MS
        )
        times = [s.at_ns for s in sched]
        assert times == sorted(times)
        for s in sched:
            assert 0 <= s.at_ns <= 8 * MS
            ends = s.ends_at_ns
            assert ends is None or ends <= 8 * MS


class TestLinkFlap:
    def test_flap_halts_then_recovers(self):
        sim = Simulator()
        net, col, _ = build_network(sim, radix=4)
        attach_fixed_flow(net, RngRegistry(1), src=0, dst=5, rate_gbps=13.5)
        sched = FaultSchedule([FaultSpec.link_flap(1e5, 1e5, node=0)])
        inj = FaultInjector(net, sched).install()
        seen = {}
        sim.schedule_at(1.5e5, lambda: seen.update(down=net.hcas[0].obuf.halted))
        sim.schedule_at(2.5e5, lambda: seen.update(up=not net.hcas[0].obuf.halted))
        net.run(until=5e5)
        assert seen == {"down": True, "up": True}
        assert inj.onsets_applied == 1 and inj.recoveries_applied == 1
        # The in-flight packet (if any) was lost; traffic resumed after
        # the retrain, so ~80% of the offered load still lands.
        rate = col.rx_rate_gbps(5, 5e5)
        assert 8.0 < rate < 13.5

    def test_empty_schedule_installs_nothing(self):
        sim = Simulator()
        net, _, _ = build_network(sim, radix=4)
        before = sim.pending
        inj = FaultInjector(net, FaultSchedule()).install()
        assert inj.filters == {}
        assert sim.pending == before


class TestCnpFaults:
    def _run_hotspot(self, drop: bool):
        """Max simultaneously-throttled flows over a congested run."""
        sim = Simulator()
        net, _, mgr = build_network(sim, radix=4, cc=True)
        rng = RngRegistry(1)
        attach_hotspot_contributors(net, rng, hotspot=0, contributors=[2, 4, 6])
        inj = None
        if drop:
            sched = FaultSchedule([FaultSpec("cnp_drop", 0.0, value=1.0)])
            inj = FaultInjector(net, sched, rng=rng).install()
        peak = [0]

        def sample():
            throttled = sum(h.cc.throttled_flows() for h in net.hcas if h.cc)
            peak[0] = max(peak[0], throttled)
            sim.schedule(0.5e5, sample)

        sim.schedule(0.5e5, sample)
        net.run(until=2 * MS)
        return peak[0], inj

    def test_dropped_cnps_prevent_throttling(self):
        clean_peak, _ = self._run_hotspot(drop=False)
        faulty_peak, inj = self._run_hotspot(drop=True)
        assert clean_peak > 0, "congested clean run must throttle someone"
        assert faulty_peak == 0, "with every CNP dropped no source can throttle"
        assert inj.cnps_dropped() > 0

    def test_filter_window_closes(self):
        sim = Simulator()
        net, _, _ = build_network(sim, radix=4, cc=True)
        rng = RngRegistry(1)
        sched = FaultSchedule([FaultSpec("cnp_drop", 1e5, 1e5, node=2, value=1.0)])
        inj = FaultInjector(net, sched, rng=rng).install()
        net.run(until=5e5)
        filt = net.hcas[2].cnp_fault
        assert filt is not None
        assert filt.drop_prob == 0.0  # window closed at 2e5
        assert inj.recoveries_applied == 1


class TestTimerFreeze:
    def test_freeze_holds_ccti_and_thaw_decays_it(self):
        sim = Simulator()
        net, _, _ = build_network(sim, radix=4, cc=True)
        cc = net.hcas[2].cc
        flow = (2, 0)
        for _ in range(5):
            cc.on_becn(flow)
        assert cc.ccti_of(flow) > 0
        frozen_at = cc.ccti_of(flow)
        cc.freeze()
        period = cc.params.timer_period_ns
        net.run(until=sim.now + 50 * period)
        assert cc.ccti_of(flow) == frozen_at
        cc.thaw()
        net.run(until=sim.now + 50 * period)
        assert cc.ccti_of(flow) == cc.params.ccti_min


class TestSwitchPauseDeadlockWatchdog:
    def test_permanent_pause_is_a_fault_stall_not_a_deadlock(self):
        # A permanently paused leaf switch wedges the flow through it:
        # buffered bytes stop moving. The stall is explained by the
        # fault-halted ports, so the watchdog must NOT misreport a
        # topology deadlock — it counts fault stalls and reports the
        # distinct stall_reason instead.
        sim = Simulator()
        net, _, _ = build_network(sim, radix=4)
        attach_fixed_flow(net, RngRegistry(1), src=0, dst=5, rate_gbps=13.5)
        sched = FaultSchedule([FaultSpec("switch_pause", 2e5, switch=0)])
        FaultInjector(net, sched).install()
        fired, stalls = [], []
        watchdog = DeadlockWatchdog(
            net, MS, on_deadlock=fired.append, on_stall=stalls.append
        ).start()
        net.run(until=10 * MS)
        watchdog.stop()
        assert not watchdog.fired and not fired
        assert watchdog.fault_stalls > 0
        assert stalls and stalls[0].stall_reason == "fault_stall"
        assert not stalls[0].deadlocked and stalls[0].buffered_bytes > 0
        assert "fault stall" in stalls[0].format()
        assert "not a topology deadlock" in stalls[0].format()

    def test_pause_resume_round_trip_is_lossless(self):
        sim = Simulator()
        net, col, _ = build_network(sim, radix=4)
        attach_fixed_flow(net, RngRegistry(1), src=0, dst=5, rate_gbps=13.5)
        sched = FaultSchedule([FaultSpec("switch_pause", 1e5, 1e5, switch=0)])
        inj = FaultInjector(net, sched).install()
        net.run(until=6e5)
        assert inj.onsets_applied == 1 and inj.recoveries_applied == 1
        assert inj.dropped_packets() == 0  # pause is lossless


class TestDegradeFault:
    def test_degrade_restores_original_rate(self):
        sim = Simulator()
        net, _, _ = build_network(sim, radix=4)
        base = net.switches[0].output_ports[2].link.rate_gbps
        sched = FaultSchedule([
            FaultSpec("degrade", 1e5, 2e5, switch=0, port=2, value=0.25),
        ])
        FaultInjector(net, sched).install()
        seen = {}
        sim.schedule_at(
            2e5,
            lambda: seen.update(slow=net.switches[0].output_ports[2].link.rate_gbps),
        )
        net.run(until=5e5)
        assert seen["slow"] == pytest.approx(base * 0.25)
        assert net.switches[0].output_ports[2].link.rate_gbps == pytest.approx(base)


class TestAuditorInvariants:
    def test_tx_on_downed_link_flags(self):
        aud = TraceAuditor()
        aud.observe(("fault", 10.0, "link_down", "s", 0, 2, 0.0))
        aud.observe(("tx", 11.0, "s", 0, 2, 0, 0, 5, 256, 0, 5))
        assert not aud.ok
        assert any("downed link" in v for v in aud.violations)

    def test_tx_after_link_up_is_clean(self):
        aud = TraceAuditor()
        aud.observe(("fault", 10.0, "link_down", "s", 0, 2, 0.0))
        aud.observe(("fault", 20.0, "link_up", "s", 0, 2, 0.0))
        aud.observe(("tx", 21.0, "s", 0, 2, 0, 0, 5, 256, 0, 5))
        assert aud.ok

    def test_tx_from_paused_switch_flags(self):
        aud = TraceAuditor()
        aud.observe(("fault", 10.0, "switch_pause", "s", 3, -1, 0.0))
        aud.observe(("tx", 11.0, "s", 3, 0, 0, 0, 5, 256, 0, 5))
        assert not aud.ok
        assert any("paused switch" in v for v in aud.violations)

    def test_conservation_modulo_drops(self):
        aud = TraceAuditor()
        aud.observe(("inj", 0.0, 0, 5, 0, 256))
        aud.observe(("drop", 1.0, "h", 0, 0, 0, 0, 5, 128, 0, "link"))
        aud.observe(("rx", 2.0, 5, 0, 5, 0, 128, 0, 0, 0))
        assert aud.ok
        # One more delivered byte than injected-minus-dropped allows.
        aud.observe(("rx", 3.0, 5, 0, 5, 0, 1, 0, 0, 0))
        assert not aud.ok


class TestExperimentIntegration:
    def test_empty_schedule_preserves_digest(self):
        spec = TraceSpec()
        clean = run_experiment(micro_cfg(cc=True), trace=spec)
        empty = run_experiment(
            micro_cfg(cc=True).with_(faults=FaultSchedule()), trace=spec
        )
        assert clean.trace_digest == empty.trace_digest
        assert clean.fault_onsets == 0 and empty.fault_onsets == 0

    def test_faulted_run_audits_clean_and_counts(self):
        sched = FaultSchedule([
            FaultSpec.link_flap(3e5, 1e5, switch=0, port=2),
            FaultSpec("cnp_drop", 2e5, 4e5, value=0.9),
        ])
        res = run_experiment(
            micro_cfg(cc=True).with_(faults=sched), trace=TraceSpec()
        )
        assert res.trace_violations == 0
        assert res.fault_onsets == 2 and res.fault_recoveries == 2
        assert res.cnps_dropped > 0

    def test_chaos_deterministic_and_jobs_invariant(self):
        from repro.experiments.runner import TracedRun
        from repro.parallel import run_campaign

        chaos = ChaosSpec(seed=11, link_flap=0.3, cnp_drop=0.3)
        cfgs = [
            micro_cfg(cc=False).with_(faults=chaos),
            micro_cfg(cc=True).with_(faults=chaos),
        ]
        run_fn = TracedRun(TraceSpec())
        serial = run_campaign(cfgs, jobs=1, run_fn=run_fn).results
        pooled = run_campaign(cfgs, jobs=2, run_fn=run_fn).results
        assert [r.trace_digest for r in serial] == [r.trace_digest for r in pooled]
        repeat = run_campaign(cfgs, jobs=1, run_fn=run_fn).results
        assert [r.trace_digest for r in serial] == [r.trace_digest for r in repeat]

    def test_fault_plan_changes_cache_key(self):
        from repro.experiments.store import config_key

        base = micro_cfg(cc=True)
        flap = base.with_(faults=FaultSchedule([
            FaultSpec.link_flap(1e5, 1e5, node=0),
        ]))
        chaos = base.with_(faults=ChaosSpec(seed=1, link_flap=0.1))
        keys = {config_key(base), config_key(flap), config_key(chaos)}
        assert len(keys) == 3

    def test_result_round_trips_fault_counters(self, tmp_path):
        from repro.experiments.store import ResultStore

        sched = FaultSchedule([FaultSpec.link_flap(3e5, 1e5, switch=0, port=2)])
        res = run_experiment(micro_cfg(cc=False).with_(faults=sched))
        store = ResultStore(str(tmp_path))
        store.save(res)
        loaded = store.load(res.config)
        assert loaded.fault_onsets == res.fault_onsets == 1
        assert loaded.fault_recoveries == res.fault_recoveries == 1
        assert loaded.config.faults == sched
