"""Tests for parameter sweeps and the result store."""

import pytest

from repro.experiments import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.experiments.store import ResultStore, config_key, result_from_dict, result_to_dict
from repro.experiments.sweep import sweep

from tests.conftest import MICRO_SCALE


def micro_cfg(**kw):
    # A very small/short config so sweep tests stay fast.
    return ExperimentConfig(
        scale=MICRO_SCALE, seed=3, sim_time_ns=1e6, warmup_ns=3e5, **kw
    )


class TestSweep:
    def test_grid_cartesian_product(self):
        res = sweep(micro_cfg(), {"threshold": [7, 15], "marking_rate": [0, 3]})
        assert len(res.cells) == 4
        assignments = [tuple(c.assignment.values()) for c in res.cells]
        assert len(set(assignments)) == 4

    def test_cc_param_actually_applied(self):
        res = sweep(micro_cfg(), {"threshold": [0, 15]})
        by_thresh = {c.assignment["threshold"]: c for c in res.cells}
        assert by_thresh[0].result.fecn_marks == 0
        assert by_thresh[15].result.fecn_marks > 0

    def test_config_field_sweep(self):
        res = sweep(micro_cfg(), {"cc": [False, True]})
        by_cc = {c.assignment["cc"]: c for c in res.cells}
        assert by_cc[False].result.fecn_marks == 0

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep parameter"):
            sweep(micro_cfg(), {"bogus_knob": [1]})

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="at least one value"):
            sweep(micro_cfg(), {"threshold": []})

    def test_best_by(self):
        res = sweep(micro_cfg(), {"threshold": [0, 15]})
        best = res.best_by("non_hotspot")
        assert best.row()["non_hotspot"] == max(
            c.row()["non_hotspot"] for c in res.cells
        )

    def test_csv_and_format(self):
        res = sweep(micro_cfg(), {"threshold": [15]})
        csv_text = res.to_csv()
        assert "threshold" in csv_text.splitlines()[0]
        assert "non_hotspot" in res.format()

    def test_progress_callback(self):
        seen = []
        sweep(
            micro_cfg(),
            {"threshold": [7, 15]},
            progress=lambda i, n, a: seen.append((i, n)),
        )
        assert seen == [(0, 2), (1, 2)]


class TestResultStore:
    def test_roundtrip(self, tmp_path):
        cfg = micro_cfg()
        res = run_experiment(cfg)
        restored = result_from_dict(result_to_dict(res))
        assert restored.rates_gbps == res.rates_gbps
        assert restored.groups == res.groups
        assert restored.config.seed == cfg.seed

    def test_save_load(self, tmp_path):
        store = ResultStore(str(tmp_path))
        cfg = micro_cfg()
        res = run_experiment(cfg)
        store.save(res)
        loaded = store.load(cfg)
        assert loaded is not None
        assert loaded.rates_gbps == res.rates_gbps
        assert len(store) == 1

    def test_missing_returns_none(self, tmp_path):
        assert ResultStore(str(tmp_path)).load(micro_cfg()) is None

    def test_get_or_run_caches(self, tmp_path):
        store = ResultStore(str(tmp_path))
        cfg = micro_cfg()
        first = store.get_or_run(cfg)
        second = store.get_or_run(cfg)
        assert second.rates_gbps == first.rates_gbps
        assert len(store) == 1

    def test_key_distinguishes_configs(self):
        assert config_key(micro_cfg()) != config_key(micro_cfg(cc=False))
        assert config_key(micro_cfg()) == config_key(micro_cfg())
