"""Tests for parameter sweeps and the result store."""

import json
import math

import pytest

from repro.core.parameters import CCParams
from repro.experiments import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.experiments.store import ResultStore, config_key, result_from_dict, result_to_dict
from repro.experiments.sweep import METRIC_FIELDS, SweepCell, SweepResult, sweep

from tests.conftest import MICRO_SCALE


def micro_cfg(**kw):
    # A very small/short config so sweep tests stay fast.
    return ExperimentConfig(
        scale=MICRO_SCALE, seed=3, sim_time_ns=1e6, warmup_ns=3e5, **kw
    )


class TestSweep:
    def test_grid_cartesian_product(self):
        res = sweep(micro_cfg(), {"threshold": [7, 15], "marking_rate": [0, 3]})
        assert len(res.cells) == 4
        assignments = [tuple(c.assignment.values()) for c in res.cells]
        assert len(set(assignments)) == 4

    def test_cc_param_actually_applied(self):
        res = sweep(micro_cfg(), {"threshold": [0, 15]})
        by_thresh = {c.assignment["threshold"]: c for c in res.cells}
        assert by_thresh[0].result.fecn_marks == 0
        assert by_thresh[15].result.fecn_marks > 0

    def test_config_field_sweep(self):
        res = sweep(micro_cfg(), {"cc": [False, True]})
        by_cc = {c.assignment["cc"]: c for c in res.cells}
        assert by_cc[False].result.fecn_marks == 0

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep parameter"):
            sweep(micro_cfg(), {"bogus_knob": [1]})

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="at least one value"):
            sweep(micro_cfg(), {"threshold": []})

    def test_best_by(self):
        res = sweep(micro_cfg(), {"threshold": [0, 15]})
        best = res.best_by("non_hotspot")
        assert best.row()["non_hotspot"] == max(
            c.row()["non_hotspot"] for c in res.cells
        )

    def test_csv_and_format(self):
        res = sweep(micro_cfg(), {"threshold": [15]})
        csv_text = res.to_csv()
        assert "threshold" in csv_text.splitlines()[0]
        assert "non_hotspot" in res.format()

    def test_progress_callback(self):
        seen = []
        sweep(
            micro_cfg(),
            {"threshold": [7, 15]},
            progress=lambda i, n, a: seen.append((i, n)),
        )
        assert seen == [(0, 2), (1, 2)]


class _FakeResult:
    """Result stub so metric-edge-case sweeps need no simulation."""

    def __init__(self, non_hotspot=1.0, fairness=1.0):
        self.non_hotspot = non_hotspot
        self.hotspot = 2.0
        self.all_nodes = 3.0
        self.total = 4.0
        self.fecn_marks = 0
        self.becns = 0
        self._fairness = fairness

    def fairness(self):
        return self._fairness


def _fake_cell(threshold, **kw):
    return SweepCell({"threshold": threshold}, _FakeResult(**kw))


NAN = float("nan")


class TestBestByNaN:
    def test_nan_cells_are_skipped(self):
        # NaN first: the historical max()-with-NaN-key bug returned it.
        res = SweepResult(cells=[
            _fake_cell(1, fairness=NAN),
            _fake_cell(2, fairness=0.5),
            _fake_cell(3, fairness=0.9),
        ])
        assert res.best_by("fairness").assignment["threshold"] == 3
        assert res.best_by("fairness", maximize=False).assignment["threshold"] == 2

    def test_nan_last_also_skipped(self):
        res = SweepResult(cells=[
            _fake_cell(1, fairness=0.4),
            _fake_cell(2, fairness=NAN),
        ])
        assert res.best_by("fairness").assignment["threshold"] == 1

    def test_all_nan_raises_clear_error(self):
        res = SweepResult(cells=[
            _fake_cell(1, fairness=NAN), _fake_cell(2, fairness=NAN)
        ])
        with pytest.raises(ValueError, match="NaN in all 2"):
            res.best_by("fairness")

    def test_empty_sweep_raises(self):
        with pytest.raises(ValueError, match="empty sweep"):
            SweepResult().best_by("fairness")


class TestEmptyCsv:
    def test_header_only_when_params_known(self):
        res = SweepResult(param_names=["threshold", "cc"])
        lines = res.to_csv().splitlines()
        assert len(lines) == 1
        header = lines[0].split(",")
        assert header[:2] == ["threshold", "cc"]
        assert header[2:] == list(METRIC_FIELDS)

    def test_error_explains_when_header_underivable(self):
        with pytest.raises(ValueError, match="no cells were run"):
            SweepResult().to_csv()

    def test_sweep_populates_param_names(self):
        res = sweep(micro_cfg(), {"threshold": [15]})
        assert res.param_names == ["threshold"]


class TestConfigKeyStability:
    def test_stable_across_kwarg_ordering(self):
        a = ExperimentConfig(scale=MICRO_SCALE, seed=3, cc=True, p=0.5)
        b = ExperimentConfig(p=0.5, cc=True, seed=3, scale=MICRO_SCALE)
        assert config_key(a) == config_key(b)

    def test_stable_across_equal_cc_params_instances(self):
        pa = CCParams.paper_table1().with_(threshold=9)
        pb = CCParams.paper_table1().with_(threshold=9)
        assert config_key(micro_cfg(cc_params=pa)) == config_key(micro_cfg(cc_params=pb))

    def test_cc_param_field_changes_key(self):
        pa = CCParams.paper_table1().with_(threshold=9)
        pb = CCParams.paper_table1().with_(threshold=10)
        assert config_key(micro_cfg(cc_params=pa)) != config_key(micro_cfg(cc_params=pb))


class TestResultStore:
    def test_roundtrip(self, tmp_path):
        cfg = micro_cfg()
        res = run_experiment(cfg)
        restored = result_from_dict(result_to_dict(res))
        assert restored.rates_gbps == res.rates_gbps
        assert restored.groups == res.groups
        assert restored.config.seed == cfg.seed

    def test_save_load(self, tmp_path):
        store = ResultStore(str(tmp_path))
        cfg = micro_cfg()
        res = run_experiment(cfg)
        store.save(res)
        loaded = store.load(cfg)
        assert loaded is not None
        assert loaded.rates_gbps == res.rates_gbps
        assert len(store) == 1

    def test_missing_returns_none(self, tmp_path):
        assert ResultStore(str(tmp_path)).load(micro_cfg()) is None

    def test_get_or_run_caches(self, tmp_path):
        store = ResultStore(str(tmp_path))
        cfg = micro_cfg()
        first = store.get_or_run(cfg)
        second = store.get_or_run(cfg)
        assert second.rates_gbps == first.rates_gbps
        assert len(store) == 1

    def test_key_distinguishes_configs(self):
        assert config_key(micro_cfg()) != config_key(micro_cfg(cc=False))
        assert config_key(micro_cfg()) == config_key(micro_cfg())

    def test_roundtrip_through_json_text(self):
        res = run_experiment(micro_cfg())
        restored = result_from_dict(json.loads(json.dumps(result_to_dict(res))))
        assert restored.rates_gbps == res.rates_gbps
        assert restored.groups == res.groups
        assert restored.config == res.config
        assert math.isclose(restored.tmax, res.tmax)

    def test_contains(self, tmp_path):
        store = ResultStore(str(tmp_path))
        cfg = micro_cfg()
        assert cfg not in store
        store.save(run_experiment(cfg))
        assert cfg in store
        assert micro_cfg(cc=False) not in store


class TestShardedLayout:
    """Fan-out subdirectories by key prefix + legacy flat read-through."""

    def test_save_lands_in_key_prefix_shard(self, tmp_path):
        store = ResultStore(str(tmp_path))
        cfg = micro_cfg()
        path = store.save(run_experiment(cfg))
        key = config_key(cfg)
        assert path == str(tmp_path / key[:2] / f"{key}.json")
        assert (tmp_path / key[:2] / f"{key}.json").exists()
        # Nothing lands flat at the top level any more.
        assert not (tmp_path / f"{key}.json").exists()

    def test_legacy_flat_entry_reads_through(self, tmp_path):
        cfg = micro_cfg()
        res = run_experiment(cfg)
        key = config_key(cfg)
        # A store written before sharding existed: flat layout.
        (tmp_path / f"{key}.json").write_text(json.dumps(result_to_dict(res)))
        store = ResultStore(str(tmp_path))
        assert cfg in store
        assert store.contains_key(key)
        loaded = store.load(cfg)
        assert loaded is not None
        assert loaded.rates_gbps == res.rates_gbps
        assert len(store) == 1

    def test_len_and_keys_span_both_layouts_without_double_count(self, tmp_path):
        cfg_a, cfg_b = micro_cfg(), micro_cfg(cc=False)
        res_a, res_b = run_experiment(cfg_a), run_experiment(cfg_b)
        key_a = config_key(cfg_a)
        # key_a in the legacy flat layout AND sharded; key_b sharded only.
        (tmp_path / f"{key_a}.json").write_text(json.dumps(result_to_dict(res_a)))
        store = ResultStore(str(tmp_path))
        store.save(res_a)
        store.save(res_b)
        assert len(store) == 2
        assert store.keys() == sorted([key_a, config_key(cfg_b)])

    def test_corrupt_sharded_entry_quarantines_in_shard(self, tmp_path):
        store = ResultStore(str(tmp_path))
        cfg = micro_cfg()
        path = store.save(run_experiment(cfg))
        with open(path, "w") as fh:
            fh.write("garbage{")
        assert store.load(cfg) is None
        from repro.experiments.store import find_quarantined, purge_quarantined

        assert find_quarantined(str(tmp_path)) == [path + ".corrupt"]
        assert purge_quarantined(str(tmp_path)) == [path + ".corrupt"]
        assert find_quarantined(str(tmp_path)) == []

    def test_same_key_save_is_last_writer_wins_and_never_torn(self, tmp_path):
        import threading

        store = ResultStore(str(tmp_path))
        res = run_experiment(micro_cfg())
        # Hammer the same key from several threads; every intermediate
        # and final read must be a complete, parseable entry.
        errors = []

        def writer():
            try:
                for _ in range(10):
                    store.save(res)
                    assert store.load(res.config) is not None
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert len(store) == 1
        assert store.load(res.config).rates_gbps == res.rates_gbps


class TestReadThroughLayer:
    """The repro.parallel cache over the store: hit/miss accounting."""

    def test_cache_hits_after_write_through(self, tmp_path):
        from repro.parallel import CellCache

        cache = CellCache(str(tmp_path))
        cfg = micro_cfg()
        assert cache.load(cfg) is None
        assert cache.misses == 1
        cache.save(run_experiment(cfg))
        assert cache.stores == 1
        hit = cache.load(cfg)
        assert hit is not None and cache.hits == 1
        assert hit.rates_gbps == run_experiment(cfg).rates_gbps

    def test_non_experiment_results_pass_through_uncached(self, tmp_path):
        from repro.parallel import CellCache

        cache = CellCache(str(tmp_path))
        cache.save("not an ExperimentResult")
        assert cache.stores == 0
        assert len(cache.store) == 0
