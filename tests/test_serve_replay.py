"""Crash recovery of the campaign daemon, against real processes.

The daemon process is started via ``python -m repro serve`` exactly as
in production, SIGKILLed mid-campaign (no drain, no checkpoint flush
beyond the per-cell ones), and restarted against the same store. The
accounting proof rides on two independent ledgers:

* the **store**: which config keys have durable results;
* the **sim log**: one append-only line per simulation a worker
  actually *started* (written before the simulation runs).

Recovery is correct iff keys completed before the kill are served from
the store byte-identically and never appear in the sim log again,
while interrupted cells re-run to completion.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.serve.client import ServeClient
from repro.serve.loadgen import micro_cell

SRC = Path(__file__).resolve().parent.parent / "src"


def _spawn_daemon(tmp_path, tag, extra=()):
    """Start ``python -m repro serve`` on an ephemeral port."""
    ready = tmp_path / f"ready-{tag}"
    log = tmp_path / f"daemon-{tag}.log"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--store", str(tmp_path / "store"),
            "--jobs", "2",
            "--port", "0",
            "--ready-file", str(ready),
            "--log-file", str(log),
            "--log-level", "INFO",
            *extra,
        ],
        env=env,
        cwd=str(tmp_path),
    )
    deadline = time.monotonic() + 60
    while not ready.exists():
        assert proc.poll() is None, f"daemon died at startup; see {log}"
        assert time.monotonic() < deadline, f"daemon never ready; see {log}"
        time.sleep(0.05)
    host, port = ready.read_text().split()
    ready.unlink()  # so a restart's ready file is unambiguous
    return proc, ServeClient(host, int(port))


def _sim_log_keys(tmp_path):
    path = tmp_path / "store" / "serve" / "sim.log"
    if not path.exists():
        return []
    return path.read_text().split()


@pytest.mark.slow
def test_sigkill_mid_campaign_then_restart_replays_without_resimulating(
    tmp_path,
):
    cells = [micro_cell(seed=8000 + i) for i in range(8)]
    proc, client = _spawn_daemon(tmp_path, "first")
    try:
        r = client.submit(cells, tenant="alice")
        assert r.status == 202
        campaign = r.json()
        cid = campaign["id"]

        # Let part of the campaign complete, then pull the plug hard.
        deadline = time.monotonic() + 120
        while True:
            state = client.campaign(cid)
            done = state["counts"].get("ok", 0)
            if 2 <= done < len(cells):
                break
            assert not state["done"], "campaign finished before the kill"
            assert time.monotonic() < deadline
            time.sleep(0.05)
    finally:
        proc.kill()
        proc.wait(timeout=30)

    completed_before = {
        c["key"] for c in state["cells"] if c["status"] == "ok"
    }
    assert completed_before
    bytes_before = {}
    # The daemon is dead; read the completed results straight from the
    # store layout (the same bytes the API serves).
    for key in completed_before:
        path = tmp_path / "store" / key[:2] / f"{key}.json"
        assert path.exists(), "completed cell has no durable store entry"
        bytes_before[key] = path.read_bytes()
    started_before = _sim_log_keys(tmp_path)
    assert set(started_before) >= completed_before

    # Restart against the same store: recovery must replay the spec.
    proc2, client2 = _spawn_daemon(tmp_path, "second")
    try:
        final = client2.wait(cid, timeout_s=180)
        assert final["done"]
        counts = final["counts"]
        assert counts.get("ok", 0) + counts.get("cached", 0) == len(cells)

        by_key = {c["key"]: c for c in final["cells"]}
        started_after = _sim_log_keys(tmp_path)
        new_starts = started_after[len(started_before):]
        for key in completed_before:
            # Completed keys came back as cache replays...
            assert by_key[key]["status"] == "cached"
            assert by_key[key]["replayed"] is True
            # ...served byte-identically over the API...
            assert client2.result_bytes(key) == bytes_before[key]
            # ...and were never simulated again.
            assert key not in new_starts

        # Zero duplicate simulations overall: every key that ever
        # completed was started exactly once across both incarnations.
        for key in completed_before:
            assert started_after.count(key) == 1
        # Interrupted cells re-ran: every cell key shows up in the
        # ledger at least once, and the campaign is fully served.
        assert set(started_after) == set(by_key)
    finally:
        proc2.send_signal(signal.SIGTERM)
        assert proc2.wait(timeout=60) == 0


@pytest.mark.slow
def test_sigterm_drains_checkpoints_and_exits_zero(tmp_path):
    proc, client = _spawn_daemon(tmp_path, "drain")
    r = client.submit([micro_cell(seed=8100 + i) for i in range(6)])
    assert r.status == 202
    cid = r.json()["id"]
    # Let at least one cell start executing, then ask for a drain.
    time.sleep(0.5)
    proc.send_signal(signal.SIGTERM)
    assert proc.wait(timeout=120) == 0

    # The spec and a valid manifest checkpoint survived the drain.
    camp_dir = tmp_path / "store" / "serve" / "campaigns"
    spec = json.loads((camp_dir / f"{cid}.json").read_text())
    assert [c["key"] for c in spec["cells"]]
    manifest = json.loads((camp_dir / f"{cid}.manifest.json").read_text())
    statuses = {c["status"] for c in manifest["cells"]}
    assert statuses <= {"ok", "cached", "interrupted", "failed"}

    # A restart finishes what the drain left behind.
    proc2, client2 = _spawn_daemon(tmp_path, "after-drain")
    try:
        final = client2.wait(cid, timeout_s=180)
        counts = final["counts"]
        assert counts.get("ok", 0) + counts.get("cached", 0) == 6
        # Drain + replay never duplicated a completed simulation.
        started = _sim_log_keys(tmp_path)
        for c in final["cells"]:
            assert started.count(c["key"]) == 1, c["key"]
    finally:
        proc2.send_signal(signal.SIGTERM)
        assert proc2.wait(timeout=60) == 0
