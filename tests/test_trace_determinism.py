"""Determinism regressions: trace digests pin down run-for-run equality.

Two properties the whole experiment layer relies on:

* the simulator is deterministic — same seed + config → the identical
  event stream, not merely similar end metrics;
* :func:`repro.parallel.run_campaign` is execution-strategy
  transparent — a cell computes the same events whether it runs
  in-process (``jobs=1``) or in a worker pool (``jobs=N``).

Both are asserted at event granularity via trace digests.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import TracedRun, run_experiment
from repro.parallel import run_campaign
from repro.trace import TraceSpec

from tests.conftest import MICRO_SCALE


def _cfg(seed: int = 3, cc: bool = True) -> ExperimentConfig:
    return ExperimentConfig(
        scale=MICRO_SCALE,
        cc=cc,
        b_fraction=0.5,
        p=0.6,
        seed=seed,
        name="determinism",
        sim_time_ns=1.0e6,
        warmup_ns=0.3e6,
    )


def test_same_seed_same_digest():
    first = run_experiment(_cfg(), trace=True)
    second = run_experiment(_cfg(), trace=True)
    assert first.trace_digest is not None
    assert first.trace_digest == second.trace_digest
    assert first.trace_records == second.trace_records
    assert first.trace_violations == 0


def test_different_seed_different_digest():
    assert (
        run_experiment(_cfg(seed=3), trace=True).trace_digest
        != run_experiment(_cfg(seed=4), trace=True).trace_digest
    )


def test_cc_toggle_changes_digest():
    assert (
        run_experiment(_cfg(cc=True), trace=True).trace_digest
        != run_experiment(_cfg(cc=False), trace=True).trace_digest
    )


def test_tracing_does_not_perturb_results():
    plain = run_experiment(_cfg())
    traced = run_experiment(_cfg(), trace=True)
    assert plain.trace_digest is None
    assert traced.rates_gbps == plain.rates_gbps
    assert traced.fecn_marks == plain.fecn_marks
    assert traced.becns == plain.becns
    assert traced.events == plain.events


@pytest.mark.slow
def test_jobs1_and_jobs4_are_event_equivalent():
    configs = [_cfg(seed=s) for s in (1, 2, 3, 4)]
    serial = run_campaign(configs, jobs=1, run_fn=TracedRun())
    pooled = run_campaign(configs, jobs=4, run_fn=TracedRun())
    d_serial = serial.manifest.digests()
    d_pooled = pooled.manifest.digests()
    assert all(d_serial.values()), "every cell must report a digest"
    assert d_serial == d_pooled
    assert all(r.trace_violations == 0 for r in serial.results)
    assert all(r.trace_violations == 0 for r in pooled.results)


def test_traced_run_spec_forwards(tmp_path):
    run_fn = TracedRun(TraceSpec(jsonl_dir=str(tmp_path)))
    result = run_fn(_cfg())
    assert result.trace_digest
    assert list(tmp_path.glob("*.jsonl")), "JSONL trace written to jsonl_dir"
