"""Unit tests for the per-output round-robin VL arbiter."""

import pytest

from repro.engine import Simulator
from repro.network.packet import Packet
from repro.network.switch import Switch


class Capture:
    def __init__(self):
        self.packets = []

    def deliver(self, pkt):
        self.packets.append(pkt)


def make_switch(sim, n_ports=4, **kwargs):
    """Switch with every output wired to a capture sink with credits."""
    sw = Switch(sim, 0, n_ports, **kwargs)
    sw.set_lft(list(range(n_ports)))  # dst i leaves via port i
    sinks = []
    for out in sw.output_ports:
        out.credits = [10.0**9] * sw.n_vls
        sink = Capture()
        out.peer = sink
        sinks.append(sink)
    return sw, sinks


class TestQueuedBytesAccounting:
    def test_increment_on_queue(self):
        sim = Simulator()
        sw, _ = make_switch(sim, obuf_capacity=0)
        sw.input_ports[0].deliver(Packet(0, 1, 500, header=0))
        sw.input_ports[2].deliver(Packet(2, 1, 700, header=0))
        assert sw.arbiters[1].queued_bytes[0] == 1200

    def test_decrement_on_grant(self):
        sim = Simulator()
        sw, _ = make_switch(sim)
        sw.input_ports[0].deliver(Packet(0, 1, 500, header=0))
        sim.run()
        assert sw.arbiters[1].queued_bytes[0] == 0

    def test_total_queued_accessor(self):
        sim = Simulator()
        sw, _ = make_switch(sim, obuf_capacity=0)
        sw.input_ports[0].deliver(Packet(0, 3, 500, header=0))
        assert sw.arbiters[3].total_queued(0) == 500
        assert sw.queued_bytes(3, 0) == 500


class TestRoundRobinFairness:
    def test_grants_alternate_between_inputs(self):
        sim = Simulator()
        # Tiny obuf: one packet at a time, so grant order is observable.
        sw, sinks = make_switch(sim, obuf_capacity=600)
        # Stall the output (no credits) while VoQs fill, then release.
        sw.output_ports[1].credits = [0.0] * sw.n_vls
        for i in range(3):
            sw.input_ports[0].deliver(Packet(0, 1, 500, header=0, msg_id=100 + i))
            sw.input_ports[2].deliver(Packet(2, 1, 500, header=0, msg_id=200 + i))
        sim.run()
        sw.output_ports[1].on_credit((0, 10.0**9))
        sim.run()
        order = [p.src for p in sinks[1].packets]
        assert order == [0, 2, 0, 2, 0, 2]

    def test_share_is_equal_under_saturation(self):
        sim = Simulator()
        sw, sinks = make_switch(sim, obuf_capacity=600)
        sw.output_ports[1].credits = [0.0] * sw.n_vls
        for i in range(12):
            sw.input_ports[0].deliver(Packet(0, 1, 500, header=0))
        for i in range(12):
            sw.input_ports[3].deliver(Packet(3, 1, 500, header=0))
        sim.run()
        sw.output_ports[1].on_credit((0, 10.0**9))
        sim.run()
        # The obuf may have pre-buffered a packet before port 3 had any
        # queued, so allow one packet of skew in the first window.
        first8 = [p.src for p in sinks[1].packets[:8]]
        assert abs(first8.count(0) - first8.count(3)) <= 2
        allp = [p.src for p in sinks[1].packets]
        assert allp.count(0) == 12 and allp.count(3) == 12

    def test_empty_voq_removed_from_rotation(self):
        sim = Simulator()
        sw, sinks = make_switch(sim)
        sw.input_ports[0].deliver(Packet(0, 1, 500, header=0))
        sim.run()
        # Deliver again later: must still be granted (re-armed).
        sw.input_ports[0].deliver(Packet(0, 1, 500, header=0))
        sim.run()
        assert len(sinks[1].packets) == 2

    def test_grant_counter(self):
        sim = Simulator()
        sw, _ = make_switch(sim)
        for _ in range(5):
            sw.input_ports[0].deliver(Packet(0, 2, 100, header=0))
        sim.run()
        assert sw.arbiters[2].grants == 5


class TestVlRotation:
    def test_both_vls_served(self):
        sim = Simulator()
        sw, sinks = make_switch(sim, n_vls=2)
        sw.input_ports[0].deliver(Packet(0, 1, 500, header=0, vl=0))
        sw.input_ports[0].deliver(Packet(0, 1, 500, header=0, vl=1))
        sim.run()
        assert len(sinks[1].packets) == 2
        assert {p.vl for p in sinks[1].packets} == {0, 1}

    def test_blocked_vl_does_not_block_other_vl(self):
        sim = Simulator()
        sw, sinks = make_switch(sim, n_vls=2, obuf_capacity=10_000)
        # No credits on VL0 downstream; VL1 has credits.
        sw.output_ports[1].credits = [0.0, 10.0**9]
        sw.input_ports[0].deliver(Packet(0, 1, 500, header=0, vl=0))
        sw.input_ports[0].deliver(Packet(0, 1, 500, header=0, vl=1))
        sim.run()
        delivered = [p.vl for p in sinks[1].packets]
        assert delivered == [1]


class TestBackpressure:
    def test_full_obuf_stalls_grants(self):
        sim = Simulator()
        sw, _ = make_switch(sim, obuf_capacity=1000)
        sw.output_ports[1].credits = [0.0] * sw.n_vls  # wedge the output
        for _ in range(5):
            sw.input_ports[0].deliver(Packet(0, 1, 500, header=0))
        sim.run()
        # obuf holds 2 x 500; the rest wait in the VoQ.
        assert sw.output_ports[1].queue_bytes == 1000
        assert sw.arbiters[1].queued_bytes[0] == 1500

    def test_space_release_resumes_grants(self):
        sim = Simulator()
        sw, sinks = make_switch(sim, obuf_capacity=1000)
        sw.output_ports[1].credits = [0.0] * sw.n_vls
        for _ in range(5):
            sw.input_ports[0].deliver(Packet(0, 1, 500, header=0))
        sim.run()
        sw.output_ports[1].on_credit((0, 10.0**9))
        sim.run()
        assert len(sinks[1].packets) == 5
