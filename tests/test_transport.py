"""Tests for repro.transport: reliable delivery under injected faults.

The contract under test: with the transport enabled, a faulted run
either recovers every lost byte by retransmission (strict trace audit
clean) or reports explicitly FAILED flows — never silent loss — while
staying deterministic and jobs-invariant; with the transport disabled
(the default) nothing changes at all.
"""

from __future__ import annotations

import pytest

from repro.engine import RngRegistry, Simulator
from repro.experiments.config import ConfigError, ExperimentConfig
from repro.experiments.runner import TracedRun, run_experiment
from repro.experiments.store import (
    ResultStore,
    config_key,
    config_to_dict,
    result_from_dict,
    result_to_dict,
)
from repro.faults import FaultSchedule, FaultSpec
from repro.network.packet import ACK_WIRE_BYTES, Packet
from repro.parallel import run_campaign
from repro.transport import (
    FLOW_FAILED,
    FLOW_OK,
    TransportConfig,
    TransportLayer,
    transport_from_dict,
    transport_to_dict,
)

from tests.conftest import MICRO_SCALE, build_network

MS = 1e6

# RTOs tuned down so a 1 ms micro run sees full timeout/backoff/fail
# cycles; defaults are sized for the quick/default/paper profiles.
RC = TransportConfig(
    rto_init_ns=3e4,
    rto_min_ns=2e4,
    rto_max_ns=1.5e5,
    max_retries=3,
    ack_coalesce_ns=1e3,
)


def micro_cfg(**kw):
    return ExperimentConfig(
        scale=MICRO_SCALE, seed=3, sim_time_ns=1e6, warmup_ns=3e5, **kw
    )


def flap_schedule():
    """Leaf-0 uplink down for 0.2 ms mid-run."""
    return FaultSchedule([FaultSpec.link_flap(3e5, 2e5, switch=0, port=2)])


class TestTransportConfig:
    def test_defaults_are_valid(self):
        cfg = TransportConfig()
        assert cfg.window_packets >= 1
        assert cfg.rto_min_ns <= cfg.rto_init_ns <= cfg.rto_max_ns

    def test_bad_values_rejected(self):
        with pytest.raises(ValueError):
            TransportConfig(window_packets=0)
        with pytest.raises(ValueError):
            TransportConfig(rto_min_ns=2e5, rto_max_ns=1e5)
        with pytest.raises(ValueError):
            TransportConfig(max_retries=0)
        with pytest.raises(ValueError):
            TransportConfig(jitter_frac=1.0)

    def test_min_retx_gap(self):
        cfg = TransportConfig(rto_min_ns=1e5, jitter_frac=0.1)
        assert cfg.min_retx_gap_ns == pytest.approx(9e4)

    def test_dict_round_trip(self):
        assert transport_from_dict(transport_to_dict(RC)) == RC
        assert transport_to_dict(None) is None
        assert transport_from_dict(None) is None


class TestAckPacket:
    def test_ack_is_control_on_reverse_flow(self):
        pkt = Packet.ack(5, 2, 17, vl=1)
        assert pkt.is_control and pkt.is_ack and not pkt.becn
        assert pkt.psn == 17
        assert pkt.flow == (2, 5)  # the data flow it acknowledges
        assert pkt.wire_size == ACK_WIRE_BYTES
        assert pkt.vl == 1

    def test_data_packet_defaults(self):
        pkt = Packet(0, 1, 2048)
        assert pkt.psn == -1 and not pkt.is_ack


class TestSenderMechanics:
    def _transport(self, window: int = 32):
        sim = Simulator()
        net, _, _ = build_network(sim)
        cfg = TransportConfig(
            window_packets=window,
            rto_init_ns=RC.rto_init_ns,
            rto_min_ns=RC.rto_min_ns,
            rto_max_ns=RC.rto_max_ns,
            max_retries=RC.max_retries,
        )
        TransportLayer(net, cfg, RngRegistry(1)).install()
        return net.hcas[0].transport

    def test_register_assigns_consecutive_psns(self):
        tr = self._transport()
        for expected in range(3):
            pkt = Packet(0, 1, 2048)
            assert tr.register(pkt)
            assert pkt.psn == expected
        assert tr.tx_flows[1].next_psn == 3

    def test_window_gates_can_send(self):
        tr = self._transport(window=2)
        for _ in range(2):
            tr.register(Packet(0, 1, 2048))
        assert not tr.can_send(1)
        assert tr.can_send(2)  # other flows unaffected
        tr.on_ack(Packet.ack(1, 0, 0))
        assert tr.can_send(1)
        assert tr.tx_flows[1].acked_psn == 0

    def test_cumulative_ack_pops_all_covered(self):
        tr = self._transport()
        for _ in range(4):
            tr.register(Packet(0, 1, 2048))
        tr.on_ack(Packet.ack(1, 0, 2))
        flow = tr.tx_flows[1]
        assert flow.acked_psn == 2
        assert len(flow.unacked) == 1
        assert flow.state == FLOW_OK

    def test_failed_flow_blackholes_without_wedging(self):
        tr = self._transport()
        tr.register(Packet(0, 1, 2048))
        flow = tr.tx_flows[1]
        flow.consecutive_timeouts = 99
        tr._fail(flow)
        assert flow.state == FLOW_FAILED
        # Later injections are accepted by can_send but discarded.
        assert tr.can_send(1)
        assert not tr.register(Packet(0, 1, 2048))
        assert flow.failed_discards == 1
        assert tr.failed_flows() == 1


class TestRecoveryUnderFaults:
    def test_link_flap_recovers_every_byte(self):
        res = run_experiment(
            micro_cfg(cc=True, faults=flap_schedule(), transport=RC),
            trace=True,
        )
        # The flap forced retransmissions, every flow recovered, and
        # the strict transport audit (incl. conservation) is clean.
        assert res.retx_packets > 0
        assert res.transport_timeouts > 0
        assert res.failed_flows == 0
        assert res.trace_violations == 0
        assert res.recovery_ns_total > 0
        assert res.flow_health  # degraded flows are reported

    def test_transport_run_is_deterministic(self):
        cfg = micro_cfg(cc=True, faults=flap_schedule(), transport=RC)
        first = run_experiment(cfg, trace=True)
        second = run_experiment(cfg, trace=True)
        assert first.trace_digest == second.trace_digest
        assert first.retx_packets == second.retx_packets

    def test_combined_chaos_is_jobs_invariant(self):
        # Link flap + lossy CNPs together, CC on and off: the digests
        # must not depend on the execution strategy.
        faults = FaultSchedule([
            FaultSpec.link_flap(3e5, 2e5, switch=0, port=2),
            FaultSpec("cnp_drop", 2e5, duration_ns=5e5, value=0.7),
        ])
        cfgs = [
            micro_cfg(cc=True, faults=faults, transport=RC, name="chaos-cc"),
            micro_cfg(cc=False, faults=faults, transport=RC, name="chaos-nocc"),
        ]
        serial = run_campaign(cfgs, jobs=1, run_fn=TracedRun()).results
        pooled = run_campaign(cfgs, jobs=4, run_fn=TracedRun()).results
        assert [r.trace_digest for r in serial] == [
            r.trace_digest for r in pooled
        ]
        assert all(r.trace_digest for r in serial)
        assert all(r.trace_violations == 0 for r in serial + pooled)

    def test_budget_exhaustion_fails_flow_and_run_completes(self):
        # A permanently downed host link exhausts the retry budget:
        # flows into the dead node end FAILED, everything else clean.
        faults = FaultSchedule([FaultSpec("link_down", 3e5, node=3)])
        res = run_experiment(
            micro_cfg(cc=True, faults=faults, transport=RC), trace=True
        )
        assert res.failed_flows > 0
        assert res.trace_violations == 0  # FAILED flows are explicit
        failed = [f for f in res.flow_health if f["state"] == FLOW_FAILED]
        # The dead link isolates node 3 in both directions: every
        # failed flow has it as an endpoint.
        assert failed and all(3 in (f["src"], f["dst"]) for f in failed)

    def test_failed_flow_result_is_cacheable(self, tmp_path):
        faults = FaultSchedule([FaultSpec("link_down", 3e5, node=3)])
        cfg = micro_cfg(cc=True, faults=faults, transport=RC)
        res = run_experiment(cfg)
        # JSON round trip preserves the transport telemetry verbatim.
        clone = result_from_dict(result_to_dict(res))
        assert clone.failed_flows == res.failed_flows
        assert clone.flow_health == res.flow_health
        assert clone.config.transport == RC
        # And the store serves it back as a cache hit for resume.
        store = ResultStore(str(tmp_path))
        store.save(res)
        cached = store.load(cfg)
        assert cached is not None
        assert cached.failed_flows == res.failed_flows


class TestConfigKey:
    def test_transport_changes_the_key(self):
        cfg = micro_cfg(cc=True)
        assert config_key(cfg) != config_key(cfg.with_(transport=RC))

    def test_transport_free_config_omits_the_field(self):
        # Key stability: configs without transport hash exactly as they
        # did before the transport layer existed.
        assert "transport" not in config_to_dict(micro_cfg())
        assert "transport" in config_to_dict(micro_cfg(transport=RC))

    def test_clean_run_with_default_rto_never_retransmits(self):
        # The default RTOs sit above worst-case congestion queueing, so
        # a fault-free run pays zero retransmissions (RC above is tuned
        # *down* for the fault tests and would fire spuriously here).
        cfg = micro_cfg(cc=True)
        plain = run_experiment(cfg)
        with_rc = run_experiment(cfg.with_(transport=TransportConfig()))
        assert with_rc.retx_packets == 0
        assert with_rc.failed_flows == 0
        assert plain.retx_packets == 0 and plain.flow_health is None


class TestValidation:
    def test_collects_every_problem(self):
        cfg = micro_cfg(cc=True).with_(inj_rate_gbps=-1.0, p=2.0)
        with pytest.raises(ConfigError) as err:
            cfg.validate()
        msg = str(err.value)
        assert "inj_rate_gbps" in msg and "p must be in [0, 1]" in msg

    def test_bad_transport_type_rejected(self):
        with pytest.raises(ConfigError, match="TransportConfig"):
            micro_cfg().with_(transport="yes please").validate()

    def test_runner_rejects_bad_config(self):
        with pytest.raises(ConfigError):
            run_experiment(micro_cfg().with_(p=-0.5))

    def test_campaign_rejects_bad_grid_before_spawning(self):
        cfgs = [micro_cfg(), micro_cfg().with_(inj_rate_gbps=0.0)]
        with pytest.raises(ConfigError, match="campaign cell 1"):
            run_campaign(cfgs, jobs=4)
