"""Tests for the congestion-tree tracker and the ASCII chart helpers."""

import pytest

from repro.engine import RngRegistry, Simulator
from repro.metrics import CongestionTreeTracker, line_chart, sparkline
from repro.metrics.tree_tracker import TreeDynamics

from tests.conftest import attach_hotspot_contributors, build_network

MS = 1e6


class TestTrackerMechanics:
    def test_sampling(self):
        sim = Simulator()
        net, _, _ = build_network(sim)
        tracker = CongestionTreeTracker(net, 0.2 * MS).start()
        net.run(until=1 * MS)
        assert len(tracker.samples) == 5

    def test_validation(self):
        sim = Simulator()
        net, _, _ = build_network(sim)
        with pytest.raises(ValueError):
            CongestionTreeTracker(net, 0.0)
        tracker = CongestionTreeTracker(net, 1.0)
        with pytest.raises(ValueError, match="two samples"):
            tracker.dynamics()

    def test_stop(self):
        sim = Simulator()
        net, _, _ = build_network(sim)
        tracker = CongestionTreeTracker(net, 0.2 * MS).start()
        sim.schedule(0.5 * MS, tracker.stop)
        net.run(until=2 * MS)
        assert len(tracker.samples) == 2


class TestClassification:
    def test_idle_network_classifies_none(self):
        sim = Simulator()
        net, _, _ = build_network(sim)
        tracker = CongestionTreeTracker(net, 0.2 * MS).start()
        net.run(until=2 * MS)
        assert tracker.dynamics().classify() == "none"

    def test_silent_forest_classifies_silent(self):
        sim = Simulator()
        net, _, _ = build_network(sim, radix=8)
        attach_hotspot_contributors(
            net, RngRegistry(1), hotspot=0, contributors=range(2, 8)
        )
        tracker = CongestionTreeTracker(net, 0.25 * MS).start()
        net.run(until=6 * MS)
        dyn = tracker.dynamics()
        assert dyn.congested_fraction > 0.5
        assert dyn.classify() == "silent"

    def test_moving_hotspots_classify_moving(self):
        from repro.traffic import BNodeSource, HotspotSchedule

        sim = Simulator()
        net, _, _ = build_network(sim, radix=8)
        rng = RngRegistry(1)
        n = net.topology.n_hosts
        schedule = HotspotSchedule.choose_initial(
            2, n, rng.stream("hs"), lifetime_ns=1 * MS
        )
        for node in range(n):
            if node in schedule.current_targets:
                continue
            gen = BNodeSource(
                node, n, 1.0, rng.stream("gen", node),
                hotspot=lambda s=schedule, k=node % 2: s.target(k),
            )
            gen.bind(net.hcas[node])
            net.hcas[node].attach_generator(gen)
        schedule.install(sim, net.hcas)
        tracker = CongestionTreeTracker(net, 0.25 * MS).start()
        net.run(until=8 * MS)
        dyn = tracker.dynamics()
        assert dyn.root_churn > 0.25
        assert dyn.classify() == "moving"

    def test_classify_thresholds(self):
        assert TreeDynamics(10, 0.0, 0.0, 0.0).classify() == "none"
        assert TreeDynamics(10, 0.0, 0.1, 0.9).classify() == "silent"
        assert TreeDynamics(10, 0.1, 0.5, 0.9).classify() == "windy"
        assert TreeDynamics(10, 0.5, 0.5, 0.9).classify() == "moving"


class TestSparkline:
    def test_range_mapping(self):
        line = sparkline([0, 10])
        assert line[0] == "▁" and line[-1] == "█"

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""


class TestLineChart:
    def test_renders_all_series(self):
        chart = line_chart(
            {"on": [1, 2, 3], "off": [3, 2, 1]},
            x=[0, 50, 100],
            width=30,
            height=8,
        )
        assert "*" in chart and "o" in chart
        assert "on" in chart and "off" in chart

    def test_axis_labels(self):
        chart = line_chart({"a": [1, 2]}, x=[0, 1], x_label="p%", y_label="Gbit/s")
        assert "p%" in chart and "Gbit/s" in chart

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart({}, x=[])

    def test_constant_series_renders(self):
        chart = line_chart({"a": [2.0, 2.0, 2.0]}, x=[0, 1, 2])
        assert "*" in chart
