"""Unit tests for deterministic RNG stream management."""

import numpy as np
import pytest

from repro.engine import RngRegistry


class TestRngRegistry:
    def test_same_key_returns_same_stream(self):
        reg = RngRegistry(7)
        assert reg.stream("gen", 3) is reg.stream("gen", 3)

    def test_different_keys_differ(self):
        reg = RngRegistry(7)
        a = reg.stream("gen", 0).random(100)
        b = reg.stream("gen", 1).random(100)
        assert not np.allclose(a, b)

    def test_reproducible_across_registries(self):
        a = RngRegistry(42).stream("x", 1).random(50)
        b = RngRegistry(42).stream("x", 1).random(50)
        assert np.array_equal(a, b)

    def test_master_seed_changes_streams(self):
        a = RngRegistry(1).stream("x").random(50)
        b = RngRegistry(2).stream("x").random(50)
        assert not np.array_equal(a, b)

    def test_adding_stream_does_not_perturb_existing(self):
        reg1 = RngRegistry(5)
        _ = reg1.stream("a").random(10)
        after = reg1.stream("a").random(10)

        reg2 = RngRegistry(5)
        _ = reg2.stream("a").random(10)
        _ = reg2.stream("b")  # new consumer interposed
        after2 = reg2.stream("a").random(10)
        assert np.array_equal(after, after2)

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            RngRegistry(0).stream()

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RngRegistry("seed")  # type: ignore[arg-type]

    def test_len_counts_streams(self):
        reg = RngRegistry(0)
        reg.stream("a")
        reg.stream("b", 1)
        reg.stream("a")  # cached, not new
        assert len(reg) == 2

    def test_master_seed_property(self):
        assert RngRegistry(99).master_seed == 99
