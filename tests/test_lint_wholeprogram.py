"""simlint v2 whole-program analysis: call graph, taint, hot path,
concurrency, baseline ratchet.

The acceptance properties from the issue are demonstrated directly:

* a ``time.time()`` helper *outside* the sim-critical zone, imported
  and called from ``engine``, is caught (DET102) — including when the
  injection is made into a sandboxed copy of the real shipped tree;
* the PERF hot set is derived from the call graph: moving a function
  out of ``Simulator.run``'s reachable set removes its PERF findings;
* baseline fingerprints survive line-number shifts (insert-a-comment
  test) while new findings still fire.
"""

import json
import shutil
import textwrap
from pathlib import Path

import pytest

from repro.experiments.cli import main as cli_main
from repro.lint import (
    Baseline,
    LintPathError,
    all_rule_ids,
    default_rule_ids,
    iter_python_files,
    run_lint,
)
from repro.lint.callgraph import (
    KIND_CALL,
    KIND_REF,
    KIND_SCHEDULED,
    build_callgraph,
    hot_set,
)
from repro.lint.engine import _load_file, _walk_with_roots
from repro.lint.project import Project

SRC = Path(__file__).resolve().parent.parent / "src"


def write_tree(tmp_path, files):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))


def project_of(tmp_path, files):
    """Build a Project (and nothing else) from a fixture tree."""
    write_tree(tmp_path, files)
    pairs = _walk_with_roots([str(tmp_path)])
    return Project(files=[_load_file(p, r) for p, r in pairs])


def lint_tree(tmp_path, files, rules=None, **kwargs):
    write_tree(tmp_path, files)
    return run_lint([str(tmp_path)], rules=rules, **kwargs)


def rule_ids(report):
    return [f.rule for f in report.findings]


def edges(graph, qual, kind=KIND_CALL):
    return [s.callee for s in graph.calls.get(qual, ()) if s.kind == kind]


# ---------------------------------------------------------------------------
# call graph: symbol resolution


def test_callgraph_resolves_from_import(tmp_path):
    project = project_of(tmp_path, {
        "engine/util.py": "def helper():\n    return 1\n",
        "engine/sim.py": """\
            from engine.util import helper

            def go():
                return helper()
            """,
    })
    graph = build_callgraph(project)
    assert edges(graph, "engine.sim.go") == ["engine.util.helper"]


def test_callgraph_resolves_aliased_module_import(tmp_path):
    project = project_of(tmp_path, {
        "engine/util.py": "def helper():\n    return 1\n",
        "engine/sim.py": """\
            import engine.util as u

            def go():
                return u.helper()
            """,
    })
    graph = build_callgraph(project)
    assert edges(graph, "engine.sim.go") == ["engine.util.helper"]


def test_callgraph_resolves_module_level_alias(tmp_path):
    project = project_of(tmp_path, {
        "engine/util.py": "def helper():\n    return 1\n",
        "engine/sim.py": """\
            from engine.util import helper as h

            fast = h

            def go():
                return fast()
            """,
    })
    graph = build_callgraph(project)
    assert edges(graph, "engine.sim.go") == ["engine.util.helper"]


def test_callgraph_resolves_self_methods_and_inheritance(tmp_path):
    project = project_of(tmp_path, {
        "engine/sim.py": """\
            class Base:
                def helper(self):
                    return 1

            class Sim(Base):
                def run(self):
                    return self.helper()
            """,
    })
    graph = build_callgraph(project)
    assert edges(graph, "engine.sim.Sim.run") == ["engine.sim.Base.helper"]


def test_callgraph_cycles_terminate(tmp_path):
    project = project_of(tmp_path, {
        "engine/sim.py": """\
            def a(n):
                return b(n - 1)

            def b(n):
                return a(n - 1) if n else 0
            """,
    })
    graph = build_callgraph(project)
    reach = graph.reachable({"engine.sim.a"})
    assert reach == {"engine.sim.a", "engine.sim.b"}
    assert graph.chain("engine.sim.a", {"engine.sim.b"}) == [
        "engine.sim.a", "engine.sim.b",
    ]


def test_callgraph_records_scheduled_refs(tmp_path):
    project = project_of(tmp_path, {
        "engine/sim.py": """\
            class Hca:
                def arm(self, sim):
                    sim.schedule(10, self._on_event)

                def _on_event(self):
                    pass
            """,
    })
    graph = build_callgraph(project)
    assert "engine.sim.Hca._on_event" in graph.scheduled
    assert edges(graph, "engine.sim.Hca.arm", KIND_SCHEDULED) == [
        "engine.sim.Hca._on_event",
    ]


# ---------------------------------------------------------------------------
# DET1xx interprocedural taint


def test_det102_catches_cross_file_wallclock_helper(tmp_path):
    """The DET002 blind spot: the read lives outside the sim zone."""
    report = lint_tree(tmp_path, {
        "util/clock.py": """\
            import time

            def now_ms():
                return int(time.time() * 1000)
            """,
        "engine/core.py": """\
            from util.clock import now_ms

            def stamp(ev):
                ev.t = now_ms()
            """,
    }, rules=["DET002", "DET102"])
    assert rule_ids(report) == ["DET102"]
    finding = report.findings[0]
    assert finding.path.endswith("core.py")  # flagged at the boundary
    assert "util.clock.now_ms" in finding.message
    assert "time.time" in finding.message


def test_det101_transitive_random_chain(tmp_path):
    report = lint_tree(tmp_path, {
        "util/a.py": """\
            from util.b import draw

            def pick():
                return draw()
            """,
        "util/b.py": """\
            import random

            def draw():
                return random.random()
            """,
        "engine/core.py": """\
            from util.a import pick

            def choose():
                return pick()
            """,
    }, rules=["DET101"])
    assert rule_ids(report) == ["DET101"]
    msg = report.findings[0].message
    assert "util.a.pick" in msg and "util.b.draw" in msg


def test_taint_clean_helper_is_silent(tmp_path):
    report = lint_tree(tmp_path, {
        "util/math.py": "def double(x):\n    return 2 * x\n",
        "engine/core.py": """\
            from util.math import double

            def go():
                return double(3)
            """,
    }, rules=["DET101", "DET102", "DET103"])
    assert rule_ids(report) == []


def test_det102_exempt_in_wallclock_allowed_package(tmp_path):
    report = lint_tree(tmp_path, {
        "util/clock.py": "import time\n\ndef now():\n    return time.time()\n",
        "parallel/driver.py": """\
            from util.clock import now

            def stamp():
                return now()
            """,
    }, rules=["DET102"])
    assert rule_ids(report) == []


def test_det101_taints_scheduled_callbacks(tmp_path):
    report = lint_tree(tmp_path, {
        "util/jitter.py": """\
            import random

            def wobble():
                return random.random()
            """,
        "engine/core.py": """\
            from util.jitter import wobble

            def arm(sim):
                sim.schedule(5, wobble)
            """,
    }, rules=["DET101"])
    assert rule_ids(report) == ["DET101"]


def test_det103_direct_env_read_and_next_line_pragma(tmp_path):
    dirty = lint_tree(tmp_path / "a", {
        "engine/knobs.py": """\
            import os

            def load():
                return os.environ.get("X", "")
            """,
    }, rules=["DET103"])
    assert rule_ids(dirty) == ["DET103"]
    clean = lint_tree(tmp_path / "b", {
        "engine/knobs.py": """\
            import os

            def load():
                # simlint: disable-next-line=DET103
                return os.environ.get("X", "")
            """,
    }, rules=["DET103"])
    assert rule_ids(clean) == []


def test_injected_cross_file_taint_caught_on_real_tree(tmp_path):
    """Acceptance: inject a wall-clock helper into the shipped tree."""
    sandbox = tmp_path / "src"
    shutil.copytree(SRC / "repro", sandbox / "repro")
    baseline = run_lint([str(sandbox)])
    assert not any(f.rule == "DET102" for f in baseline.findings)

    (sandbox / "repro" / "wallutil.py").write_text(textwrap.dedent("""\
        import time


        def now_ms():
            return int(time.time() * 1000)
        """))
    sim = sandbox / "repro" / "engine" / "simulator.py"
    sim.write_text(sim.read_text() + textwrap.dedent("""\


        from repro.wallutil import now_ms


        def _injected_probe():
            return now_ms()
        """))
    report = run_lint([str(sandbox)])
    hits = [f for f in report.findings if f.rule == "DET102"]
    assert len(hits) == 1
    assert hits[0].path.endswith("engine/simulator.py")
    assert "time.time" in hits[0].message


# ---------------------------------------------------------------------------
# PERF0xx hot path


def test_perf_findings_follow_the_call_graph(tmp_path):
    """Acceptance: leaving Simulator.run's reachable set clears PERF."""
    hot = lint_tree(tmp_path / "hot", {
        "engine/sim.py": """\
            class Simulator:
                def run(self):
                    return self._dispatch()

                def _dispatch(self):
                    return {"kind": "ev"}
            """,
    }, rules=["PERF001"])
    assert rule_ids(hot) == ["PERF001"]
    assert "_dispatch" in hot.findings[0].message

    cold = lint_tree(tmp_path / "cold", {
        "engine/sim.py": """\
            class Simulator:
                def warmup(self):
                    return self._dispatch()

                def _dispatch(self):
                    return {"kind": "ev"}
            """,
    }, rules=["PERF001"])
    assert rule_ids(cold) == []


def test_perf_scheduled_callback_joins_hot_set(tmp_path):
    report = lint_tree(tmp_path, {
        "engine/handlers.py": """\
            def on_packet(sim):
                return {"hop": 1}
            """,
        "engine/setup.py": """\
            from engine.handlers import on_packet

            def arm(sim):
                sim.schedule(10, on_packet)
            """,
    }, rules=["PERF001"])
    assert rule_ids(report) == ["PERF001"]
    assert report.findings[0].path.endswith("handlers.py")


def test_hot_set_membership_is_closure_over_calls(tmp_path):
    project = project_of(tmp_path, {
        "engine/sim.py": """\
            class Simulator:
                def run(self):
                    return self._step()

                def _step(self):
                    return helper()

            def helper():
                return 1

            def offline_report():
                return 2
            """,
    })
    graph = build_callgraph(project)
    hot = hot_set(project, graph)
    assert "engine.sim.Simulator._step" in hot
    assert "engine.sim.helper" in hot
    assert "engine.sim.offline_report" not in hot


def test_perf003_unslotted_instantiation_and_slotted_fix(tmp_path):
    dirty = lint_tree(tmp_path / "a", {
        "engine/sim.py": """\
            class Ev:
                def __init__(self):
                    self.x = 1

            class Simulator:
                def run(self):
                    return Ev()
            """,
    }, rules=["PERF003"])
    assert rule_ids(dirty) == ["PERF003"]
    clean = lint_tree(tmp_path / "b", {
        "engine/sim.py": """\
            class Ev:
                __slots__ = ("x",)

                def __init__(self):
                    self.x = 1

            class Simulator:
                def run(self):
                    return Ev()
            """,
    }, rules=["PERF003"])
    assert rule_ids(clean) == []


def test_perf_error_path_constructions_exempt(tmp_path):
    report = lint_tree(tmp_path, {
        "engine/sim.py": """\
            class SimError(Exception):
                pass

            class Simulator:
                def run(self, t):
                    if t < 0:
                        raise SimError(f"bad time {t}")
                    return t
            """,
    }, rules=["PERF001", "PERF003", "PERF004"])
    assert rule_ids(report) == []


def test_perf002_kwargs_and_try_in_hot_function(tmp_path):
    report = lint_tree(tmp_path, {
        "engine/sim.py": """\
            class Simulator:
                def run(self, **opts):
                    try:
                        return opts
                    except KeyError:
                        return None
            """,
    }, rules=["PERF002"])
    assert sorted(rule_ids(report)) == ["PERF002", "PERF002"]


def test_perf004_fstring_and_logging_in_hot_function(tmp_path):
    report = lint_tree(tmp_path, {
        "engine/sim.py": """\
            import logging

            log = logging.getLogger(__name__)

            class Simulator:
                def run(self, ev):
                    log.debug("dispatch %s", ev)
                    return f"ev={ev}"
            """,
    }, rules=["PERF004"])
    assert sorted(rule_ids(report)) == ["PERF004", "PERF004"]


# ---------------------------------------------------------------------------
# CON0xx concurrency


def test_con001_direct_blocking_in_async(tmp_path):
    report = lint_tree(tmp_path, {
        "serve/app.py": """\
            import time

            async def handler():
                time.sleep(0.1)
                with open("/tmp/x") as fh:
                    return fh.read()
            """,
    }, rules=["CON001"])
    assert rule_ids(report) == ["CON001", "CON001"]
    assert "time.sleep" in report.findings[0].message
    assert "open" in report.findings[1].message


def test_con001_blocking_through_sync_helper(tmp_path):
    report = lint_tree(tmp_path, {
        "serve/app.py": """\
            import time

            def pause():
                time.sleep(0.1)

            async def handler():
                pause()
            """,
    }, rules=["CON001"])
    assert rule_ids(report) == ["CON001"]
    assert "serve.app.pause" in report.findings[0].message


def test_con001_executor_offload_is_sanctioned(tmp_path):
    report = lint_tree(tmp_path, {
        "serve/app.py": """\
            import time

            def pause():
                time.sleep(0.1)

            async def handler(loop):
                await loop.run_in_executor(None, pause)
            """,
    }, rules=["CON001"])
    assert rule_ids(report) == []


def test_con002_worker_mutating_module_global(tmp_path):
    report = lint_tree(tmp_path, {
        "parallel/worker.py": """\
            CACHE = {}

            def worker_main(queue):
                CACHE["warm"] = True
                record({"i": 1})

            def record(item):
                CACHE.update(item)
            """,
    }, rules=["CON002"])
    assert rule_ids(report) == ["CON002", "CON002"]
    assert all("CACHE" in f.message for f in report.findings)


def test_con002_local_state_is_fine(tmp_path):
    report = lint_tree(tmp_path, {
        "parallel/worker.py": """\
            def worker_main(queue):
                cache = {}
                cache["warm"] = True
                return cache
            """,
    }, rules=["CON002"])
    assert rule_ids(report) == []


def test_con003_off_loop_write_to_loop_owned_state(tmp_path):
    report = lint_tree(tmp_path, {
        "serve/exec.py": """\
            import threading

            class Service:
                async def pump(self):
                    self.jobs = 1

                def start(self):
                    threading.Thread(target=self._run).start()

                def _run(self):
                    self.jobs = 2
            """,
    }, rules=["CON003"])
    assert rule_ids(report) == ["CON003"]
    assert "_run" in report.findings[0].message


def test_con003_call_soon_threadsafe_is_exempt(tmp_path):
    report = lint_tree(tmp_path, {
        "serve/exec.py": """\
            import threading

            class Service:
                async def pump(self):
                    self.jobs = 1

                def start(self):
                    threading.Thread(target=self._run).start()

                def _run(self):
                    self.loop.call_soon_threadsafe(self._apply)

                def _apply(self):
                    self.jobs = 2
            """,
    }, rules=["CON003"])
    assert rule_ids(report) == []


# ---------------------------------------------------------------------------
# baseline ratchet


def test_baseline_subtracts_accepted_findings(tmp_path):
    files = {
        "engine/gen.py": "import random\nX = random.random()\n",
    }
    first = lint_tree(tmp_path, files, rules=["DET001"])
    assert len(first.findings) == 1
    path = tmp_path / "baseline.json"
    Baseline.from_findings(
        [(f, f.fingerprint) for f in first.findings]
    ).save(str(path))
    second = run_lint(
        [str(tmp_path)], rules=["DET001"], baseline=str(path)
    )
    assert second.findings == []
    assert second.baselined == 1
    assert second.exit_code() == 0


def test_baseline_fingerprints_survive_line_shift(tmp_path):
    """Acceptance: inserting a comment resurrects nothing."""
    target = tmp_path / "engine" / "gen.py"
    report = lint_tree(tmp_path, {
        "engine/gen.py": "import random\nX = random.random()\n",
    }, rules=["DET001"])
    path = tmp_path / "baseline.json"
    Baseline.from_findings(
        [(f, f.fingerprint) for f in report.findings]
    ).save(str(path))

    target.write_text(
        "# an unrelated comment pushes every line down\n"
        "import random\nX = random.random()\n"
    )
    shifted = run_lint(
        [str(tmp_path)], rules=["DET001"], baseline=str(path)
    )
    assert shifted.findings == []
    assert shifted.baselined == 1


def test_baseline_still_fires_on_new_findings(tmp_path):
    target = tmp_path / "engine" / "gen.py"
    report = lint_tree(tmp_path, {
        "engine/gen.py": "import random\nX = random.random()\n",
    }, rules=["DET001"])
    path = tmp_path / "baseline.json"
    Baseline.from_findings(
        [(f, f.fingerprint) for f in report.findings]
    ).save(str(path))

    target.write_text(
        "import random\nX = random.random()\nY = random.randint(0, 9)\n"
    )
    after = run_lint(
        [str(tmp_path)], rules=["DET001"], baseline=str(path)
    )
    assert len(after.findings) == 1
    assert "randint" in after.findings[0].message
    assert after.baselined == 1
    assert after.exit_code() == 1


def test_identical_lines_get_distinct_fingerprints(tmp_path):
    report = lint_tree(tmp_path, {
        "engine/gen.py": (
            "import random\n"
            "def f():\n"
            "    return random.random()\n"
            "def g():\n"
            "    return random.random()\n"
        ),
    }, rules=["DET001"])
    fps = [f.fingerprint for f in report.findings]
    assert len(fps) == 2 and len(set(fps)) == 2


def test_changed_only_scopes_reporting_not_analysis(tmp_path):
    write_tree(tmp_path, {
        "engine/a.py": "import random\nX = random.random()\n",
        "engine/b.py": "import random\nY = random.random()\n",
    })
    changed = [str(tmp_path / "engine" / "a.py")]
    report = run_lint(
        [str(tmp_path)], rules=["DET001"], changed_only=changed
    )
    assert [f.path for f in report.findings] == changed
    assert report.out_of_scope == 1


# ---------------------------------------------------------------------------
# path handling (iter_python_files hard errors)


def test_iter_python_files_raises_on_missing_path(tmp_path):
    with pytest.raises(LintPathError):
        iter_python_files([str(tmp_path / "nope.py")])


def test_iter_python_files_raises_on_non_py_file(tmp_path):
    readme = tmp_path / "README.md"
    readme.write_text("# not python\n")
    with pytest.raises(LintPathError):
        iter_python_files([str(readme)])


def test_iter_python_files_walks_directories(tmp_path):
    write_tree(tmp_path, {"pkg/mod.py": "X = 1\n", "pkg/notes.txt": "hi\n"})
    found = iter_python_files([str(tmp_path)])
    assert [Path(p).name for p in found] == ["mod.py"]


def test_cli_exits_2_on_non_py_explicit_file(tmp_path, capsys):
    readme = tmp_path / "README.md"
    readme.write_text("# not python\n")
    assert cli_main(["lint", str(readme)]) == 2
    assert "not a Python file" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# CLI: baseline auto-load / update, mypyc report, opt-in rules


def test_cli_update_baseline_then_ratchet(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    write_tree(tmp_path, {
        "tree/engine/gen.py": "import random\nX = random.random()\n",
    })
    assert cli_main(["lint", "tree", "--no-baseline"]) == 1
    assert cli_main(["lint", "tree", "--update-baseline"]) == 0
    assert (tmp_path / "lint-baseline.json").is_file()
    capsys.readouterr()
    assert cli_main(["lint", "tree"]) == 0  # auto-loaded
    assert "1 baselined" in capsys.readouterr().out
    assert cli_main(["lint", "tree", "--no-baseline"]) == 1


def test_mypyc_rules_are_opt_in(tmp_path):
    assert "MPC001" in all_rule_ids()
    assert "MPC001" not in default_rule_ids()
    assert "MPC002" not in default_rule_ids()
    report = lint_tree(tmp_path, {
        "engine/dyn.py": """\
            class Box:
                def __init__(self):
                    self.v = 1

            def patch(box):
                setattr(box, "v", 2)
            """,
    }, rules=["MPC001", "MPC002"])
    assert sorted(rule_ids(report)) == ["MPC001", "MPC002"]
    assert report.exit_code(strict=True) == 0  # info only


def test_cli_mypyc_report_artifact(tmp_path, capsys):
    write_tree(tmp_path, {
        "tree/engine/dyn.py": (
            "class Box:\n    def __init__(self):\n        self.v = 1\n"
        ),
    })
    out = tmp_path / "mypyc.json"
    code = cli_main([
        "lint", str(tmp_path / "tree"), "--no-baseline",
        "--mypyc-report", str(out),
    ])
    assert code == 0
    data = json.loads(out.read_text())
    assert data["rules_run"] == ["MPC001", "MPC002"]
    assert any(f["rule"] == "MPC002" for f in data["findings"])


def test_shipped_tree_gate_with_committed_baseline():
    """Acceptance: ``repro lint src/`` (+ baseline) exits 0."""
    repo_root = SRC.parent
    baseline = repo_root / "lint-baseline.json"
    assert baseline.is_file(), "committed lint-baseline.json missing"
    report = run_lint([str(SRC)], baseline=str(baseline))
    assert report.findings == []
    assert report.exit_code(strict=True) == 0
