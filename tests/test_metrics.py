"""Tests for collectors and the paper's aggregate metrics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    Collector,
    NullCollector,
    group_rates,
    improvement_factor,
    jain_fairness,
    mean_rate_gbps,
    tmax_gbps,
)
from repro.network.packet import Packet


class TestCollector:
    def test_counts_payload_not_wire(self):
        col = Collector(4)
        col.record_rx(1, Packet(0, 1, 2048, header=30), 10.0)
        assert col.rx_bytes[1] == 2048

    def test_warmup_excluded(self):
        col = Collector(4, warmup_ns=100.0)
        col.record_rx(1, Packet(0, 1, 2048), 99.9)
        col.record_rx(1, Packet(0, 1, 2048), 100.0)
        assert col.rx_bytes[1] == 2048

    def test_control_packets_separate(self):
        col = Collector(4)
        col.record_rx(1, Packet.cnp(0, 1), 10.0)
        assert col.rx_bytes[1] == 0
        assert col.control_rx == 1

    def test_rate_computation(self):
        col = Collector(2, warmup_ns=0.0)
        col.record_rx(0, Packet(1, 0, 1250), 5.0)  # 1250 B over 1000 ns
        assert col.rx_rate_gbps(0, 1000.0) == pytest.approx(10.0)

    def test_rate_accounts_for_warmup_window(self):
        col = Collector(2, warmup_ns=500.0)
        col.record_rx(0, Packet(1, 0, 1250), 600.0)
        assert col.rx_rate_gbps(0, 1500.0) == pytest.approx(10.0)

    def test_empty_window_rejected(self):
        col = Collector(2, warmup_ns=100.0)
        with pytest.raises(ValueError):
            col.rx_rate_gbps(0, 100.0)

    def test_tx_accounting(self):
        col = Collector(2)
        col.record_tx(0, Packet(0, 1, 2048), 1.0)
        assert col.tx_bytes[0] == 2048 and col.tx_packets[0] == 1

    def test_fecn_counter(self):
        col = Collector(2)
        pkt = Packet(0, 1, 100)
        pkt.fecn = True
        col.record_rx(1, pkt, 1.0)
        assert col.fecn_rx == 1

    def test_pair_tracking(self):
        col = Collector(4, track_pairs=True)
        col.record_rx(1, Packet(0, 1, 100), 1.0)
        col.record_rx(1, Packet(0, 1, 100), 2.0)
        col.record_rx(1, Packet(2, 1, 100), 3.0)
        assert col.rx_by_src[(0, 1)] == 200
        assert col.rx_by_src[(2, 1)] == 100

    def test_total_rate(self):
        col = Collector(2)
        col.record_rx(0, Packet(1, 0, 1250), 1.0)
        col.record_rx(1, Packet(0, 1, 1250), 1.0)
        assert col.total_rx_rate_gbps(1000.0) == pytest.approx(20.0)

    def test_null_collector_noops(self):
        n = NullCollector()
        n.record_rx(0, Packet(0, 1, 10), 0.0)
        n.record_tx(0, Packet(0, 1, 10), 0.0)


class TestGroupRates:
    def test_split(self):
        rates = [10.0, 1.0, 2.0, 3.0]
        g = group_rates(rates, hotspots=[0])
        assert g["hotspot"] == 10.0
        assert g["non_hotspot"] == pytest.approx(2.0)
        assert g["all"] == pytest.approx(4.0)
        assert g["total"] == pytest.approx(16.0)

    def test_no_hotspots(self):
        g = group_rates([1.0, 2.0], hotspots=[])
        assert "hotspot" not in g
        assert g["non_hotspot"] == pytest.approx(1.5)

    def test_mean_rate_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_rate_gbps([1.0], [])


class TestTmax:
    def test_paper_fig5_p0(self):
        # x=25%: 162 B + 97 V nodes at 13.5 over 648 = 5.4 Gbit/s.
        assert tmax_gbps(
            n_nodes=648, n_b=162, n_v=97, p=0.0,
            inj_rate_gbps=13.5, sink_rate_gbps=13.6,
        ) == pytest.approx(5.4, abs=0.01)

    def test_paper_fig5_p100(self):
        # At p=1 only V traffic remains: 97 * 13.5 / 648 = 2.02.
        assert tmax_gbps(
            n_nodes=648, n_b=162, n_v=97, p=1.0,
            inj_rate_gbps=13.5, sink_rate_gbps=13.6,
        ) == pytest.approx(2.02, abs=0.01)

    def test_capped_by_sink_rate(self):
        assert tmax_gbps(
            n_nodes=2, n_b=0, n_v=2, p=0.0,
            inj_rate_gbps=40.0, sink_rate_gbps=13.6,
        ) == 13.6

    def test_decreasing_in_p(self):
        vals = [
            tmax_gbps(n_nodes=100, n_b=80, n_v=20, p=p / 10,
                      inj_rate_gbps=13.5, sink_rate_gbps=13.6)
            for p in range(11)
        ]
        assert all(a >= b for a, b in zip(vals, vals[1:]))

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            tmax_gbps(n_nodes=10, n_b=1, n_v=1, p=1.5,
                      inj_rate_gbps=1, sink_rate_gbps=1)


class TestImprovementAndFairness:
    def test_improvement(self):
        assert improvement_factor(20.0, 10.0) == 2.0

    def test_improvement_zero_baseline(self):
        with pytest.raises(ValueError):
            improvement_factor(1.0, 0.0)

    def test_jain_equal_is_one(self):
        assert jain_fairness([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_jain_single_user_minimum(self):
        # One node hogging everything: index = 1/n.
        assert jain_fairness([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_jain_all_zero(self):
        assert jain_fairness([0.0, 0.0]) == 1.0

    def test_jain_empty_rejected(self):
        with pytest.raises(ValueError):
            jain_fairness([])

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_jain_bounds(self, values):
        j = jain_fairness(values)
        assert 0.0 < j <= 1.0 + 1e-9
