"""Unit tests for packets and flow keys."""

import pytest

from repro.network.packet import CNP_WIRE_BYTES, DEFAULT_HEADER_BYTES, Packet


class TestPacket:
    def test_wire_size_includes_header(self):
        pkt = Packet(0, 1, 2048)
        assert pkt.wire_size == 2048 + DEFAULT_HEADER_BYTES

    def test_custom_header(self):
        pkt = Packet(0, 1, 100, header=10)
        assert pkt.wire_size == 110

    def test_flow_is_src_dst(self):
        pkt = Packet(3, 9, 2048)
        assert pkt.flow == (3, 9)

    def test_bits_default_clear(self):
        pkt = Packet(0, 1, 2048)
        assert not pkt.fecn and not pkt.becn and not pkt.is_control

    def test_self_addressed_rejected(self):
        with pytest.raises(ValueError):
            Packet(4, 4, 2048)

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            Packet(0, 1, -1)

    def test_zero_payload_allowed(self):
        assert Packet(0, 1, 0).payload == 0

    def test_msg_id_recorded(self):
        assert Packet(0, 1, 10, msg_id=42).msg_id == 42

    def test_vl_sl_defaults(self):
        pkt = Packet(0, 1, 10)
        assert pkt.vl == 0 and pkt.sl == 0

    def test_repr_contains_endpoints(self):
        assert "0->1" in repr(Packet(0, 1, 10))


class TestCnp:
    def test_cnp_direction_and_flow(self):
        # Node 9 (destination of the data flow) notifies node 3 (source).
        cnp = Packet.cnp(9, 3)
        assert cnp.src == 9 and cnp.dst == 3
        # The flow key is the original data flow 3 -> 9.
        assert cnp.flow == (3, 9)

    def test_cnp_flags(self):
        cnp = Packet.cnp(1, 0)
        assert cnp.becn and cnp.is_control and not cnp.fecn

    def test_cnp_wire_size(self):
        assert Packet.cnp(1, 0).wire_size == CNP_WIRE_BYTES

    def test_cnp_vl_override(self):
        assert Packet.cnp(1, 0, vl=1).vl == 1
