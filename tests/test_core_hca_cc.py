"""Tests for the HCA-side CC reaction point (CCTI, CCT timer, modes)."""

import pytest

from repro.core.hca_cc import HcaCC
from repro.core.parameters import CCParams
from repro.engine import Simulator
from repro.network.hca import Hca
from repro.network.packet import Packet


def make_hca_cc(sim=None, *, params=None):
    sim = sim or Simulator()
    hca = Hca(sim, 0)
    hca.obuf.credits = [10.0**9] * 2
    hca.obuf.peer = type("S", (), {"deliver": lambda self, p: None})()
    params = params or CCParams.paper_table1().with_(cct_slope=1.0)
    cc = HcaCC(hca, params)
    hca.cc = cc
    return sim, hca, cc


FLOW = (0, 5)


class TestBecnHandling:
    def test_becn_raises_ccti(self):
        _, _, cc = make_hca_cc()
        cc.on_becn(FLOW)
        assert cc.ccti_of(FLOW) == 1

    def test_ccti_increase_step(self):
        _, _, cc = make_hca_cc(
            params=CCParams.paper_table1().with_(ccti_increase=5)
        )
        cc.on_becn(FLOW)
        assert cc.ccti_of(FLOW) == 5

    def test_ccti_saturates_at_limit(self):
        _, _, cc = make_hca_cc(
            params=CCParams.paper_table1().with_(ccti_limit=3)
        )
        for _ in range(10):
            cc.on_becn(FLOW)
        assert cc.ccti_of(FLOW) == 3

    def test_flows_independent_in_qp_mode(self):
        _, _, cc = make_hca_cc()
        cc.on_becn((0, 5))
        cc.on_becn((0, 5))
        cc.on_becn((0, 7))
        assert cc.ccti_of((0, 5)) == 2
        assert cc.ccti_of((0, 7)) == 1
        assert cc.ccti_of((0, 9)) == 0

    def test_becn_counter(self):
        _, _, cc = make_hca_cc()
        cc.on_becn(FLOW)
        cc.on_becn(FLOW)
        assert cc.becns_applied == 2

    def test_throttled_flows_census(self):
        _, _, cc = make_hca_cc()
        cc.on_becn((0, 5))
        cc.on_becn((0, 6))
        assert cc.throttled_flows() == 2


class TestIrdPacing:
    def test_unthrottled_flow_not_paced(self):
        _, _, cc = make_hca_cc()
        assert cc.next_allowed(FLOW) == 0.0

    def test_throttled_flow_paced_after_inject(self):
        sim, hca, cc = make_hca_cc()
        cc.on_becn(FLOW)  # ccti=1, CCT[1]=1 (slope 1)
        pkt = Packet(0, 5, 2048, header=30)
        cc.on_inject(pkt)
        # next = now + ser * (1 + CCT[1]) = 2 * ser
        ser = 2078 * hca.obuf.link.byte_time_ns
        assert cc.next_allowed(FLOW) == pytest.approx(2 * ser)

    def test_deeper_ccti_longer_gap(self):
        sim, hca, cc = make_hca_cc()
        for _ in range(4):
            cc.on_becn(FLOW)
        pkt = Packet(0, 5, 2048, header=30)
        cc.on_inject(pkt)
        ser = 2078 * hca.obuf.link.byte_time_ns
        assert cc.next_allowed(FLOW) == pytest.approx(5 * ser)

    def test_inject_of_other_flow_does_not_pace(self):
        _, _, cc = make_hca_cc()
        cc.on_becn(FLOW)
        cc.on_inject(Packet(0, 9, 2048))
        assert cc.next_allowed(FLOW) == 0.0

    def test_cct_shorter_than_limit_rejected(self):
        sim = Simulator()
        hca = Hca(sim, 0)
        with pytest.raises(ValueError, match="CCT shorter"):
            HcaCC(hca, CCParams.paper_table1(), cct=[0.0, 1.0])


class TestRecoveryTimer:
    def test_timer_decrements_ccti(self):
        sim, _, cc = make_hca_cc()
        cc.on_becn(FLOW)
        cc.on_becn(FLOW)
        sim.run(until=cc.params.timer_period_ns + 1)
        assert cc.ccti_of(FLOW) == 1

    def test_full_recovery_stops_timer(self):
        sim, _, cc = make_hca_cc()
        cc.on_becn(FLOW)
        sim.run(until=10 * cc.params.timer_period_ns)
        assert cc.ccti_of(FLOW) == 0
        fires = cc.timer_fires
        sim.schedule(10 * cc.params.timer_period_ns, lambda: None)
        sim.run()
        assert cc.timer_fires == fires  # no further expiries

    def test_timer_respects_ccti_min(self):
        sim, _, cc = make_hca_cc(
            params=CCParams.paper_table1().with_(ccti_min=2)
        )
        for _ in range(5):
            cc.on_becn(FLOW)
        sim.run(until=20 * cc.params.timer_period_ns)
        assert cc.ccti_of(FLOW) == 2

    def test_timer_decrements_all_flows(self):
        sim, _, cc = make_hca_cc()
        cc.on_becn((0, 5))
        cc.on_becn((0, 6))
        cc.on_becn((0, 6))
        sim.run(until=cc.params.timer_period_ns + 1)
        assert cc.ccti_of((0, 5)) == 0
        assert cc.ccti_of((0, 6)) == 1

    def test_becn_rearms_timer(self):
        sim, _, cc = make_hca_cc()
        cc.on_becn(FLOW)
        sim.run(until=2 * cc.params.timer_period_ns)
        assert cc.ccti_of(FLOW) == 0
        cc.on_becn(FLOW)
        sim.run(until=sim.now + 2 * cc.params.timer_period_ns)
        assert cc.ccti_of(FLOW) == 0  # decayed again


class TestSlMode:
    def test_one_becn_throttles_whole_sl(self):
        _, _, cc = make_hca_cc(
            params=CCParams.paper_table1().with_(cc_mode="sl")
        )
        cc.on_becn((0, 5), sl=0)
        # A different flow on the same SL observes the same throttle.
        assert cc.ccti_of((0, 9), sl=0) == 1

    def test_sls_are_separate(self):
        _, _, cc = make_hca_cc(
            params=CCParams.paper_table1().with_(cc_mode="sl")
        )
        cc.on_becn((0, 5), sl=0)
        assert cc.ccti_of((0, 5), sl=1) == 0

    def test_sl_mode_pacing_applies_to_all_flows(self):
        sim, hca, cc = make_hca_cc(
            params=CCParams.paper_table1().with_(cc_mode="sl", cct_slope=1.0)
        )
        cc.on_becn((0, 5), sl=0)
        cc.on_inject(Packet(0, 5, 2048, header=30))
        # The innocent flow (0, 9) is paced too - the paper's fairness
        # argument against SL-level operation.
        assert cc.next_allowed((0, 9), sl=0) > 0.0
