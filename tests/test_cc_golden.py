"""CC-subsystem golden regression: the registry must not move the paper.

The :mod:`repro.cc` registry re-routes every CC install through a
mechanism factory. These tests pin the two invariants that refactor
must preserve:

* **byte-identity of the default** — an explicit ``CCConfig("ib")``,
  the implicit default (``cc_config=None``, the CLI path without
  ``--cc``), and the pinned golden digest of the pre-registry code all
  produce the *same event stream*;
* **store-key stability** — the explicit and implicit spellings of the
  paper's mechanism share one content key (no cache split), while any
  other mechanism or a tuned parameter set gets its own;
* **executor-independence of the new mechanisms** — a non-IB mechanism
  digests identically under ``jobs=1`` (in-process serial) and
  ``jobs=4`` (process pool), like every other cell.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.cc import CCConfig
from repro.experiments.config import SCALES, ExperimentConfig
from repro.experiments.runner import TracedRun, config_slug, run_experiment
from repro.experiments.store import config_key

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden", "digests.json")

#: The pinned golden cell this file re-derives: Table II's hotspot
#: CC-on phase at quick scale (see test_golden_digests.py).
GOLDEN_SLUG = "table2-seed7-cc"


def _golden_digest() -> str:
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)[GOLDEN_SLUG]


def _table2_cc_config(**overrides) -> ExperimentConfig:
    """The exact config behind the ``table2-seed7-cc`` golden."""
    return ExperimentConfig(
        scale=SCALES["quick"], b_fraction=0.0, c_fraction_of_rest=0.8,
        seed=7, name="table2", cc=True, **overrides,
    )


def _quick_arena_config(cc: CCConfig) -> ExperimentConfig:
    """A seconds-scale cell for executor-equality checks."""
    return _table2_cc_config(cc_config=cc).with_(
        sim_time_ns=2e6, warmup_ns=0.5e6
    )


@pytest.mark.slow
def test_explicit_ib_mechanism_matches_pinned_golden():
    """``--cc ib`` is byte-identical to the pre-registry event stream."""
    cfg = _table2_cc_config(cc_config=CCConfig.make("ib"))
    assert config_slug(cfg) == GOLDEN_SLUG
    res = run_experiment(cfg, trace=True)
    assert res.trace_violations == 0
    assert res.trace_digest == _golden_digest()


@pytest.mark.slow
def test_cli_default_no_cc_config_matches_pinned_golden():
    """No ``cc_config`` at all (the CLI default) hits the same golden."""
    cfg = _table2_cc_config()  # cc_config=None -> CCConfig() inside
    assert cfg.cc_config is None
    assert config_slug(cfg) == GOLDEN_SLUG
    res = run_experiment(cfg, trace=True)
    assert res.trace_violations == 0
    assert res.trace_digest == _golden_digest()


def test_store_key_identical_for_implicit_and_explicit_ib():
    """Both spellings of the paper's mechanism share one cache entry."""
    implicit = _table2_cc_config()
    explicit = _table2_cc_config(cc_config=CCConfig.make("ib"))
    assert config_key(implicit) == config_key(explicit)


def test_store_key_distinct_for_other_mechanisms_and_tunings():
    keys = {
        config_key(_table2_cc_config()),
        config_key(_table2_cc_config(cc_config=CCConfig.make("dctcp"))),
        config_key(_table2_cc_config(cc_config=CCConfig.make("dcqcn"))),
        config_key(
            _table2_cc_config(cc_config=CCConfig.make("ib", ccti_limit=64))
        ),
    }
    assert len(keys) == 4


@pytest.mark.slow
@pytest.mark.parametrize("mech", ["ib", "dctcp", "reno", "dcqcn"])
def test_mechanism_digest_invariant_under_scheduler(monkeypatch, mech):
    """Every registered mechanism digests identically on both kernels.

    The CC feedback loops are the most timing-entangled consumers of
    the event queue (CCT timers, CNP scheduling, rate updates at
    sub-bucket delays), so each mechanism gets its own heap-vs-calendar
    equivalence check on a seconds-scale cell.
    """
    cfg = _quick_arena_config(CCConfig.make(mech))
    monkeypatch.setenv("REPRO_SCHEDULER", "heapq")
    ref = run_experiment(cfg, trace=True)
    monkeypatch.setenv("REPRO_SCHEDULER", "calendar")
    cal = run_experiment(cfg, trace=True)
    assert ref.trace_violations == 0 and cal.trace_violations == 0
    assert ref.trace_digest is not None
    assert cal.trace_digest == ref.trace_digest


@pytest.mark.slow
def test_non_ib_mechanism_digest_identical_jobs1_vs_jobs4():
    """dcqcn cells digest the same in-process and across a pool."""
    from repro.parallel import run_campaign

    configs = [_quick_arena_config(CCConfig.make("dcqcn"))]
    serial = run_campaign(
        configs, jobs=1, run_fn=TracedRun()
    ).raise_on_failure()
    pooled = run_campaign(
        configs, jobs=4, run_fn=TracedRun()
    ).raise_on_failure()
    want = [r.trace_digest for r in serial.results]
    got = [r.trace_digest for r in pooled.results]
    assert want == got
    assert all(d is not None for d in want)
