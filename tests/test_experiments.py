"""Tests for the experiment configuration and drivers (micro scale)."""

import pytest

from repro.core import CCParams
from repro.experiments import (
    SCALES,
    ExperimentConfig,
    run_experiment,
    run_moving_figure,
    run_moving_point,
    run_table2,
    run_windy_point,
)

from tests.conftest import MICRO_SCALE


class TestScaleProfiles:
    def test_registry_contents(self):
        assert set(SCALES) == {"quick", "default", "paper"}

    def test_paper_scale_is_sun_dcs(self):
        paper = SCALES["paper"]
        assert paper.radix == 36
        assert paper.n_hosts == 648
        assert paper.n_hotspots == 8

    def test_paper_scale_keeps_table1_marking_rate(self):
        assert SCALES["paper"].marking_rate == 0

    def test_quick_host_count(self):
        assert SCALES["quick"].n_hosts == 32


class TestExperimentConfig:
    def test_cc_params_resolution_uses_scale(self):
        cfg = ExperimentConfig(scale=MICRO_SCALE)
        params = cfg.resolved_cc_params()
        assert params.cct_slope == MICRO_SCALE.cct_slope
        assert params.marking_rate == MICRO_SCALE.marking_rate
        assert params.ccti_limit == 127  # Table I untouched

    def test_explicit_cc_params_win(self):
        custom = CCParams.paper_table1().with_(threshold=7)
        cfg = ExperimentConfig(scale=MICRO_SCALE, cc_params=custom)
        assert cfg.resolved_cc_params().threshold == 7

    def test_moving_runs_use_moving_sim_time(self):
        cfg = ExperimentConfig(scale=MICRO_SCALE, hotspot_lifetime_ns=1e6)
        assert cfg.resolved_sim_time() == MICRO_SCALE.moving_sim_time_ns

    def test_warmup_capped_at_fraction_of_sim(self):
        cfg = ExperimentConfig(scale=MICRO_SCALE, sim_time_ns=1e6)
        assert cfg.resolved_warmup() <= 0.4e6

    def test_with_copies(self):
        cfg = ExperimentConfig(scale=MICRO_SCALE)
        assert cfg.with_(cc=False).cc is False
        assert cfg.cc is True


class TestRunExperiment:
    def test_result_structure(self):
        res = run_experiment(ExperimentConfig(scale=MICRO_SCALE, seed=3))
        assert len(res.rates_gbps) == MICRO_SCALE.n_hosts
        assert len(res.hotspots) == MICRO_SCALE.n_hotspots
        assert res.total == pytest.approx(sum(res.rates_gbps))
        assert res.events > 0
        assert res.wall_seconds > 0

    def test_cc_off_has_no_marks(self):
        res = run_experiment(ExperimentConfig(scale=MICRO_SCALE, cc=False))
        assert res.fecn_marks == 0 and res.becns == 0

    def test_cc_on_marks_under_hotspots(self):
        res = run_experiment(
            ExperimentConfig(scale=MICRO_SCALE, b_fraction=0.0, cc=True)
        )
        assert res.fecn_marks > 0

    def test_contributors_silenced_baseline(self):
        res = run_experiment(
            ExperimentConfig(scale=MICRO_SCALE, contributors_active=False, cc=False)
        )
        # Only the V-share uniform load: every node receives roughly the
        # same modest rate; no saturation anywhere.
        assert max(res.rates_gbps) < 13.0

    def test_same_seed_same_result(self):
        cfg = ExperimentConfig(scale=MICRO_SCALE, seed=11)
        a = run_experiment(cfg)
        b = run_experiment(cfg)
        assert a.rates_gbps == b.rates_gbps

    def test_different_seed_different_result(self):
        a = run_experiment(ExperimentConfig(scale=MICRO_SCALE, seed=1))
        b = run_experiment(ExperimentConfig(scale=MICRO_SCALE, seed=2))
        assert a.rates_gbps != b.rates_gbps

    def test_fairness_accessor(self):
        res = run_experiment(ExperimentConfig(scale=MICRO_SCALE))
        assert 0.0 < res.fairness() <= 1.0


class TestTable2Driver:
    def test_rows_and_shape(self):
        t2 = run_table2(MICRO_SCALE, seed=3)
        rows = t2.rows()
        assert set(rows) == {
            "no_hotspots_no_cc_avg",
            "no_hotspots_cc_avg",
            "hotspots_no_cc_hotspot_avg",
            "hotspots_no_cc_non_hotspot_avg",
            "hotspots_cc_hotspot_avg",
            "hotspots_cc_non_hotspot_avg",
            "total_throughput_no_cc",
            "total_throughput_cc",
        }
        # The paper's qualitative shape at any scale:
        assert rows["hotspots_no_cc_non_hotspot_avg"] < rows["no_hotspots_no_cc_avg"]
        assert rows["hotspots_cc_non_hotspot_avg"] > rows["hotspots_no_cc_non_hotspot_avg"]
        assert t2.improvement > 1.0

    def test_format_is_printable(self):
        t2 = run_table2(MICRO_SCALE, seed=3)
        text = t2.format()
        assert "Table II" in text and "Improvement" in text


class TestWindyDriver:
    def test_point_structure(self):
        pt = run_windy_point(1.0, 0.6, MICRO_SCALE, seed=3)
        assert pt.improvement > 0
        assert pt.tmax == pt.on.tmax

    def test_cc_wins_at_mid_p(self):
        pt = run_windy_point(1.0, 0.6, MICRO_SCALE, seed=3)
        assert pt.on.non_hotspot > pt.off.non_hotspot


class TestMovingDriver:
    def test_point_and_figure(self):
        fig = run_moving_figure(
            MICRO_SCALE, c_fraction_of_rest=0.8, label="test", seed=3
        )
        assert len(fig.points) == len(MICRO_SCALE.moving_lifetimes_ns)
        series = fig.series()
        assert len(series["lifetime_ms"]) == len(fig.points)
        assert "test" in fig.format()

    def test_moving_hotspots_actually_move(self):
        pt = run_moving_point(0.5e6, MICRO_SCALE, seed=3)
        # With a 0.5 ms lifetime over a 2 ms run, several relocations
        # happened; the run completes and produces rates.
        assert pt.on.total > 0 and pt.off.total > 0
