"""Tests for the adaptive-routing baseline."""

import pytest

from repro.engine import RngRegistry, Simulator
from repro.metrics import Collector
from repro.network.adaptive import AdaptiveUpRouter, install_adaptive_routing
from repro.topology import mesh

from tests.conftest import (
    attach_fixed_flow,
    attach_hotspot_contributors,
    build_network,
)

MS = 1e6


class TestInstall:
    def test_routers_on_leaves_only(self):
        sim = Simulator()
        net, _, _ = build_network(sim, radix=4)
        routers = install_adaptive_routing(net)
        assert len(routers) == 4  # one per leaf
        assert all(net.switches[i].router is routers[i] for i in range(4))
        assert all(net.switches[i].router is None for i in range(4, 6))

    def test_requires_folded_clos_metadata(self):
        from repro.network import Network, NetworkConfig

        sim = Simulator()
        net = Network(sim, mesh([2, 2]), NetworkConfig())
        with pytest.raises(ValueError, match="folded-Clos"):
            install_adaptive_routing(net)

    def test_empty_up_ports_rejected(self):
        sim = Simulator()
        net, _, _ = build_network(sim, radix=4)
        with pytest.raises(ValueError):
            AdaptiveUpRouter(net.switches[0], net.switches[0].lft, [])


class TestRoutingBehaviour:
    def test_local_delivery_unchanged(self):
        sim = Simulator()
        net, _, _ = build_network(sim, radix=4)
        install_adaptive_routing(net)
        from repro.network.packet import Packet

        # Host 1 is local to leaf 0 at port 1.
        assert net.switches[0].route(Packet(0, 1, 100)) == 1

    def test_idle_network_prefers_deterministic_port(self):
        sim = Simulator()
        net, _, _ = build_network(sim, radix=4)
        install_adaptive_routing(net)
        from repro.network.packet import Packet

        # With all loads zero, ties resolve to the d-mod-k port.
        pkt = Packet(0, 5, 100)  # remote: deterministic port 2 + (5 % 2)
        assert net.switches[0].route(pkt) == 2 + (5 % 2)

    def test_loaded_port_avoided(self):
        sim = Simulator()
        net, _, _ = build_network(sim, radix=4)
        install_adaptive_routing(net)
        from repro.network.packet import Packet

        leaf = net.switches[0]
        det = 2 + (5 % 2)  # d-mod-k up port for destination 5
        other = 2 + (1 - (5 % 2))
        # Pile synthetic load onto the deterministic port.
        leaf.output_ports[det].queue_bytes = 10_000
        assert leaf.route(Packet(0, 5, 100)) == other
        leaf.output_ports[det].queue_bytes = 0

    def test_decision_counter(self):
        sim = Simulator()
        net, col, _ = build_network(sim, radix=4)
        routers = install_adaptive_routing(net)
        attach_fixed_flow(net, RngRegistry(1), src=0, dst=5, rate_gbps=10.0)
        net.run(until=1 * MS)
        assert routers[0].adaptive_decisions > 0

    def test_throughput_preserved_for_single_flow(self):
        sim = Simulator()
        net, col, _ = build_network(sim, radix=4)
        install_adaptive_routing(net)
        attach_fixed_flow(net, RngRegistry(1), src=0, dst=5, rate_gbps=10.0)
        net.run(until=2 * MS)
        assert col.rx_rate_gbps(5, 2 * MS) == pytest.approx(10.0, rel=0.05)


class TestPaperClaim:
    def test_ar_alone_does_not_fix_end_node_congestion(self):
        """AR cannot create bandwidth at a saturated end node (paper §I)."""

        def run(adaptive):
            sim = Simulator()
            net, col, _ = build_network(sim, radix=8)
            if adaptive:
                install_adaptive_routing(net)
            rng = RngRegistry(1)
            attach_hotspot_contributors(net, rng, hotspot=0, contributors=range(2, 7))
            attach_fixed_flow(net, rng, src=7, dst=8, rate_gbps=13.5)
            net.run(until=6 * MS)
            return col.rx_rate_gbps(8, 6 * MS)

        deterministic = run(adaptive=False)
        adaptive = run(adaptive=True)
        # AR may shuffle the branches but the victim stays far from its
        # injection rate — unlike CC, which restores >60% (see
        # test_integration_cc.TestVictimRecovery).
        assert adaptive < 13.5 * 0.6
