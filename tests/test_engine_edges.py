"""Edge-case tests for the simulation kernel and RNG registry."""

import pytest

from repro.engine import RngRegistry, Simulator, SimulationError


class TestSchedulingEdges:
    def test_zero_delay_fires_at_now(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: sim.schedule(0.0, fired.append, sim.now))
        sim.run()
        assert fired == [5.0]

    def test_schedule_at_now_allowed(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: sim.schedule_at(sim.now, lambda: None))
        sim.run()  # must not raise

    def test_until_zero(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.0, fired.append, 1)
        sim.run(until=0.0)
        assert fired == [1]

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        order = []

        def first():
            order.append("first")
            sim.schedule(1.0, lambda: order.append("nested"))

        sim.schedule(1.0, first)
        sim.run()
        assert order == ["first", "nested"]

    def test_massive_same_time_batch_is_stable(self):
        sim = Simulator()
        out = []
        for i in range(2000):
            sim.schedule(7.0, out.append, i)
        sim.run()
        assert out == list(range(2000))

    def test_cancel_already_executed_is_noop(self):
        sim = Simulator()
        eid = sim.schedule(1.0, lambda: None)
        sim.run()
        sim.cancel(eid)  # stale id; harmless
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.events_executed == 2

    def test_exception_in_handler_propagates_and_loop_recovers(self):
        sim = Simulator()

        def boom():
            raise RuntimeError("handler failure")

        sim.schedule(1.0, boom)
        sim.schedule(2.0, lambda: None)
        with pytest.raises(RuntimeError, match="handler failure"):
            sim.run()
        # The loop can be resumed afterwards.
        sim.run()
        assert sim.events_executed == 2


class TestRngEdges:
    def test_tuple_like_keys_distinct(self):
        reg = RngRegistry(1)
        a = reg.stream("gen", 12)
        b = reg.stream("gen", 1, 2)
        assert a is not b

    def test_large_seed(self):
        reg = RngRegistry(2**62)
        assert reg.stream("x").random() is not None

    def test_numpy_integer_seed_accepted(self):
        import numpy as np

        reg = RngRegistry(np.int64(7))
        assert reg.master_seed == 7
