"""Unit tests for output ports (obuf) and switch input ports (ibuf)."""

import pytest

from repro.engine import Simulator
from repro.network.packet import Packet
from repro.network.ports import LinkConfig, OutputPort


class Capture:
    """Stub downstream endpoint that records deliveries."""

    def __init__(self):
        self.packets = []
        self.times = []

    def deliver(self, pkt):
        self.packets.append(pkt)


class CaptureWithTime(Capture):
    def __init__(self, sim):
        super().__init__()
        self.sim = sim

    def deliver(self, pkt):
        self.packets.append(pkt)
        self.times.append(self.sim.now)


def make_port(sim, *, rate=20.0, prop=50.0, capacity=8192, n_vls=1, credits=10**9):
    port = OutputPort(sim, LinkConfig(rate, prop), capacity=capacity, n_vls=n_vls)
    port.credits = [float(credits)] * n_vls
    peer = CaptureWithTime(sim)
    port.peer = peer
    return port, peer


class TestLinkConfig:
    def test_byte_time(self):
        # 20 Gbit/s = 2.5 bytes/ns -> 0.4 ns per byte.
        assert LinkConfig(20.0).byte_time_ns == pytest.approx(0.4)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            LinkConfig(0.0)

    def test_invalid_delay(self):
        with pytest.raises(ValueError):
            LinkConfig(20.0, -1.0)


class TestOutputPortSerialization:
    def test_delivery_after_serialization_and_propagation(self):
        sim = Simulator()
        port, peer = make_port(sim)
        pkt = Packet(0, 1, 1000, header=0)  # 1000 B -> 400 ns at 20G
        port.enqueue(pkt)
        sim.run()
        assert peer.packets == [pkt]
        assert peer.times[0] == pytest.approx(400.0 + 50.0)

    def test_packets_serialized_back_to_back(self):
        sim = Simulator()
        port, peer = make_port(sim)
        for _ in range(3):
            port.enqueue(Packet(0, 1, 1000, header=0))
        sim.run()
        assert peer.times == pytest.approx([450.0, 850.0, 1250.0])

    def test_fifo_order(self):
        sim = Simulator()
        port, peer = make_port(sim)
        pkts = [Packet(0, 1, 100, header=0, msg_id=i) for i in range(5)]
        for p in pkts:
            port.enqueue(p)
        sim.run()
        assert [p.msg_id for p in peer.packets] == [0, 1, 2, 3, 4]

    def test_front_enqueue_jumps_queue(self):
        sim = Simulator()
        port, peer = make_port(sim)
        first = Packet(0, 1, 1000, header=0, msg_id=0)
        second = Packet(0, 1, 1000, header=0, msg_id=1)
        urgent = Packet(0, 1, 64, header=0, msg_id=99)
        port.enqueue(first)  # starts transmitting immediately
        port.enqueue(second)
        port.enqueue(urgent, front=True)
        sim.run()
        assert [p.msg_id for p in peer.packets] == [0, 99, 1]

    def test_throughput_matches_link_rate(self):
        sim = Simulator()
        port, peer = make_port(sim)
        n, size = 100, 2000
        for _ in range(n):
            port.enqueue(Packet(0, 1, size, header=0))
        sim.run()
        # Last delivery at n * size * 0.4 + prop.
        assert peer.times[-1] == pytest.approx(n * size * 0.4 + 50.0)

    def test_stats_counters(self):
        sim = Simulator()
        port, _ = make_port(sim)
        port.enqueue(Packet(0, 1, 1000, header=0))
        port.enqueue(Packet(0, 1, 500, header=0))
        sim.run()
        assert port.packets_sent == 2
        assert port.bytes_sent == 1500


class TestOutputPortCredits:
    def test_blocked_without_credits(self):
        sim = Simulator()
        port, peer = make_port(sim, credits=0)
        port.enqueue(Packet(0, 1, 1000, header=0))
        sim.run()
        assert peer.packets == []
        assert port.queue_bytes == 1000

    def test_partial_credits_insufficient(self):
        sim = Simulator()
        port, peer = make_port(sim, credits=999)
        port.enqueue(Packet(0, 1, 1000, header=0))
        sim.run()
        assert peer.packets == []

    def test_credit_arrival_unblocks(self):
        sim = Simulator()
        port, peer = make_port(sim, credits=0)
        port.enqueue(Packet(0, 1, 1000, header=0))
        sim.schedule(100.0, port.on_credit, (0, 1000))
        sim.run()
        assert len(peer.packets) == 1
        assert peer.times[0] == pytest.approx(100.0 + 400.0 + 50.0)

    def test_credits_consumed_per_packet(self):
        sim = Simulator()
        port, peer = make_port(sim, credits=2500)
        port.enqueue(Packet(0, 1, 1000, header=0))
        port.enqueue(Packet(0, 1, 1000, header=0))
        port.enqueue(Packet(0, 1, 1000, header=0))
        sim.run()
        assert len(peer.packets) == 2  # third blocked at 500 credits
        assert port.credits[0] == pytest.approx(500.0)

    def test_per_vl_credit_isolation(self):
        sim = Simulator()
        port, peer = make_port(sim, n_vls=2, credits=0)
        port.credits[1] = 10_000.0
        blocked = Packet(0, 1, 1000, header=0)      # vl 0, no credits
        free = Packet(0, 1, 1000, header=0, vl=1)   # vl 1, credits
        port.enqueue(free)
        port.enqueue(blocked)
        sim.run()
        assert peer.packets == [free]

    def test_no_hol_blocking_across_vls(self):
        # VLs are separate queues through the egress stage: a
        # credit-blocked VL0 head must not block a VL1 packet (this is
        # what keeps CNPs deliverable through a congested fabric).
        sim = Simulator()
        port, peer = make_port(sim, n_vls=2, credits=0)
        port.credits[1] = 10_000.0
        blocked = Packet(0, 1, 1000, header=0)
        free = Packet(0, 1, 1000, header=0, vl=1)
        port.enqueue(blocked)
        port.enqueue(free)
        sim.run()
        assert peer.packets == [free]
        assert port.queue_bytes == 1000  # the VL0 packet still waits

    def test_vl_round_robin_when_both_have_credits(self):
        sim = Simulator()
        port, peer = make_port(sim, n_vls=2, credits=10**9)
        for i in range(3):
            port.enqueue(Packet(0, 1, 100, header=0, vl=0, msg_id=i))
        for i in range(3):
            port.enqueue(Packet(0, 1, 100, header=0, vl=1, msg_id=10 + i))
        sim.run()
        vls = [p.vl for p in peer.packets]
        # Perfect alternation after the first packet.
        assert vls.count(0) == 3 and vls.count(1) == 3
        assert vls[1:5] in ([1, 0, 1, 0], [0, 1, 0, 1])


class TestOutputPortSpace:
    def test_has_space(self):
        sim = Simulator()
        port, _ = make_port(sim, capacity=3000, credits=0)
        assert port.has_space(3000)
        port.enqueue(Packet(0, 1, 2000, header=0))
        assert port.has_space(1000)
        assert not port.has_space(1001)

    def test_free_space(self):
        sim = Simulator()
        port, _ = make_port(sim, capacity=3000, credits=0)
        port.enqueue(Packet(0, 1, 1200, header=0))
        assert port.free_space == 1800

    def test_on_space_called_when_head_departs(self):
        sim = Simulator()
        port, _ = make_port(sim)
        calls = []
        port.on_space = lambda: calls.append(sim.now)
        port.enqueue(Packet(0, 1, 1000, header=0))
        sim.run()
        assert calls  # fired as the packet left the queue


class TestSwitchInputPort:
    def _one_switch(self, sim, **kwargs):
        from repro.network.switch import Switch

        sw = Switch(sim, 0, 2, **kwargs)
        sw.set_lft([0, 1])
        return sw

    def test_overflow_raises(self):
        sim = Simulator()
        sw = self._one_switch(sim, ibuf_capacity=1000)
        with pytest.raises(RuntimeError, match="overflow"):
            sw.input_ports[0].deliver(Packet(0, 1, 1001, header=0))

    def test_routing_loop_detected(self):
        sim = Simulator()
        sw = self._one_switch(sim)
        # LFT says destination 1 leaves via port 1; deliver to port 1.
        with pytest.raises(RuntimeError, match="loop"):
            sw.input_ports[1].deliver(Packet(0, 1, 100, header=0))

    def test_credit_returned_on_grant(self):
        sim = Simulator()
        sw = self._one_switch(sim)
        upstream, _ = make_port(sim, credits=0)
        ip = sw.input_ports[0]
        ip.upstream = upstream
        ip.credit_delay_ns = 10.0
        sw.output_ports[1].credits = [10**9] * sw.n_vls
        sw.output_ports[1].peer = Capture()
        pkt = Packet(0, 1, 500, header=0)
        ip.deliver(pkt)
        sim.run()
        assert upstream.credits[0] == pytest.approx(500.0)

    def test_occupancy_tracks_packets(self):
        sim = Simulator()
        # A zero-size obuf keeps granted packets in the input VoQ.
        sw = self._one_switch(sim, ibuf_capacity=10_000, obuf_capacity=0)
        ip = sw.input_ports[0]
        ip.deliver(Packet(0, 1, 500, header=0))
        ip.deliver(Packet(0, 1, 700, header=0))
        assert ip.occupancy[0] == 1200
