"""Tests for the experiment runner's generator construction."""

import pytest

from repro.engine import RngRegistry
from repro.experiments import ExperimentConfig
from repro.experiments.runner import build_generators
from repro.traffic import HotspotSchedule

from tests.conftest import MICRO_SCALE


def make(cfg_kwargs, n_hosts=16, n_subsets=2, seed=5):
    cfg = ExperimentConfig(scale=MICRO_SCALE, seed=seed, **cfg_kwargs)
    rng = RngRegistry(seed)
    schedule = HotspotSchedule.choose_initial(n_subsets, n_hosts, rng.stream("hotspots"))
    gens, mix = build_generators(cfg, n_hosts, rng, schedule)
    return gens, mix, schedule


class TestRoleToGenerator:
    def test_c_nodes_get_p1(self):
        gens, mix, _ = make({"b_fraction": 0.0})
        for node in mix.c_nodes:
            assert gens[node].p == 1.0
            assert gens[node].hotspot is not None

    def test_v_nodes_get_p0(self):
        gens, mix, _ = make({"b_fraction": 0.0})
        for node in mix.v_nodes:
            assert gens[node].p == 0.0
            assert gens[node].hotspot is None

    def test_b_nodes_get_config_p(self):
        gens, mix, _ = make({"b_fraction": 1.0, "p": 0.4})
        for node in mix.b_nodes:
            assert gens[node].p == 0.4

    def test_hotspot_provider_bound_to_subset(self):
        gens, mix, schedule = make({"b_fraction": 0.0})
        for node in mix.c_nodes:
            subset = mix.subset_of[node]
            assert gens[node].hotspot() == schedule.target(subset)

    def test_silenced_contributors(self):
        gens, mix, _ = make({"b_fraction": 0.0, "contributors_active": False})
        for node in mix.c_nodes:
            assert gens[node] is None  # pure contributors fall silent
        for node in mix.v_nodes:
            assert gens[node] is not None

    def test_silenced_b_nodes_keep_uniform_share(self):
        gens, mix, _ = make(
            {"b_fraction": 1.0, "p": 0.5, "contributors_active": False}
        )
        for node in mix.b_nodes:
            assert gens[node] is not None
            assert gens[node].p == 0.0  # only the uniform share remains

    def test_injection_rate_propagates(self):
        gens, mix, _ = make({"b_fraction": 0.0, "inj_rate_gbps": 10.0})
        active = [g for g in gens if g is not None]
        # Total budget rate (hotspot + uniform shares) equals the cap.
        for gen in active:
            total = sum(b.rate for b in gen.budgets) * 8.0
            assert total == pytest.approx(10.0)

    def test_one_generator_slot_per_node(self):
        gens, _, _ = make({"b_fraction": 0.5})
        assert len(gens) == 16
