"""Unit and property tests for the leaky-bucket budgets."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traffic.budgets import TokenBudget


class TestTokenBudget:
    def test_starts_full(self):
        b = TokenBudget(8.0, 4096)
        assert b.eligible_time(0.0, 4096) == 0.0

    def test_burst_depth_limits_single_charge(self):
        b = TokenBudget(8.0, 4096)
        with pytest.raises(ValueError):
            b.eligible_time(0.0, 5000)

    def test_refill_rate(self):
        # 8 Gbit/s = 1 byte/ns. Draining the full bucket means the next
        # 1000-byte charge is eligible exactly 1000 ns later.
        b = TokenBudget(8.0, 4096)
        b.charge(0.0, 4096)
        assert b.eligible_time(0.0, 1000) == pytest.approx(1000.0)

    def test_partial_tokens_shorten_wait(self):
        b = TokenBudget(8.0, 4096)
        b.charge(0.0, 4096)
        assert b.eligible_time(500.0, 1000) == pytest.approx(1000.0)

    def test_no_catch_up_after_idle(self):
        # A long idle period must not bank more than the bucket depth:
        # the injection cap is a physical bottleneck (PCIe), not a quota.
        b = TokenBudget(8.0, 4096)
        b.charge(0.0, 4096)
        b.charge(1_000_000.0, 4096)  # idle 1 ms, bucket full again
        # Immediately after, only refill-rate service is available.
        assert b.eligible_time(1_000_000.0, 4096) == pytest.approx(1_004_096.0)

    def test_disabled_stream(self):
        b = TokenBudget(0.0)
        assert not b.enabled
        assert b.eligible_time(0.0, 1) == float("inf")

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            TokenBudget(-1.0)

    def test_zero_burst_rejected(self):
        with pytest.raises(ValueError):
            TokenBudget(1.0, 0)

    def test_spent_counter(self):
        b = TokenBudget(8.0, 4096)
        b.charge(0.0, 100)
        b.charge(10.0, 200)
        assert b.spent == 300

    def test_utilization(self):
        b = TokenBudget(8.0, 4096)  # 1 byte/ns
        b.charge(0.0, 500)
        assert b.utilization(1000.0) == pytest.approx(0.5)

    def test_utilization_zero_window(self):
        assert TokenBudget(8.0).utilization(0.0) == 0.0


class TestBudgetProperties:
    @given(
        rate=st.floats(min_value=0.5, max_value=40.0),
        charges=st.lists(st.integers(min_value=64, max_value=4096), min_size=1, max_size=60),
    )
    @settings(max_examples=60, deadline=None)
    def test_long_run_rate_never_exceeded(self, rate, charges):
        """Charging as early as allowed keeps spend within rate*t + burst."""
        b = TokenBudget(rate, 4096)
        now = 0.0
        for n in charges:
            now = max(now, b.eligible_time(now, n))
            b.charge(now, n)
        if now > 0:
            assert b.spent <= (rate / 8.0) * now + 4096 + 1e-6

    @given(
        rate=st.floats(min_value=0.5, max_value=40.0),
        n=st.integers(min_value=64, max_value=4096),
        idle=st.floats(min_value=0.0, max_value=1e6),
    )
    @settings(max_examples=60, deadline=None)
    def test_eligible_time_never_in_past(self, rate, n, idle):
        b = TokenBudget(rate, 4096)
        b.charge(0.0, 4096)
        t = b.eligible_time(idle, n)
        assert t >= idle

    @given(st.integers(min_value=64, max_value=4096))
    @settings(max_examples=30, deadline=None)
    def test_tokens_bounded_by_burst(self, n):
        b = TokenBudget(8.0, 4096)
        b.charge(0.0, n)
        b.eligible_time(1e9, 64)  # force refill far in the future
        assert b.tokens <= 4096.0
