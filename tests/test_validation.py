"""Tests for the calibration battery."""

import pytest

from repro.validation import CalibrationCheck, run_calibration
from repro.validation.checks import (
    check_arbitration_shares,
    check_cc_idle_overhead,
    check_injection_cap,
    check_link_serialization,
    check_sink_cap,
)


class TestCalibrationCheck:
    def test_pass_within_tolerance(self):
        assert CalibrationCheck("x", 10.0, 10.4, 0.05).passed

    def test_fail_outside_tolerance(self):
        assert not CalibrationCheck("x", 10.0, 11.0, 0.05).passed

    def test_zero_expected_uses_absolute(self):
        assert CalibrationCheck("x", 0.0, 0.005, 0.01).passed
        assert not CalibrationCheck("x", 0.0, 0.05, 0.01).passed

    def test_format(self):
        line = CalibrationCheck("serialization", 1.0, 1.0, 0.01).format()
        assert "ok" in line and "serialization" in line
        assert "FAIL" in CalibrationCheck("x", 1.0, 9.0, 0.01).format()


class TestIndividualChecks:
    def test_link_serialization(self):
        assert check_link_serialization().passed

    def test_injection_cap(self):
        assert check_injection_cap().passed

    def test_sink_cap(self):
        assert check_sink_cap().passed

    def test_arbitration_shares(self):
        assert check_arbitration_shares().passed

    def test_cc_idle_overhead(self):
        assert check_cc_idle_overhead().passed


@pytest.mark.slow
class TestFullBattery:
    def test_everything_passes(self):
        report = run_calibration()
        assert report.all_passed, "\n" + report.format()
        assert "7/7" in report.format()
