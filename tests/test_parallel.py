"""Tests for repro.parallel: the fault-tolerant campaign executor.

Worker callables handed to ``run_fn`` must be picklable, so every
injected behavior (crash, hang, flake) lives at module level; cross-
process state (e.g. "fail only the first attempt") goes through marker
files carried in ``ExperimentConfig.name``.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.experiments import ExperimentConfig, run_experiment, run_table2
from repro.experiments.config import ScaleProfile
from repro.experiments.sweep import sweep
from repro.experiments.store import ResultStore, config_key
from repro.parallel import (
    CampaignError,
    CellCache,
    ProgressReporter,
    RetryPolicy,
    RunManifest,
    derive_seed,
    run_campaign,
    run_cells,
)

from tests.conftest import MICRO_SCALE

# A table2-capable profile small enough for per-test driver runs.
TINY_SCALE = ScaleProfile(
    name="tiny",
    radix=4,
    n_hotspots=2,
    sim_time_ns=1e6,
    warmup_ns=3e5,
    cct_slope=0.5,
    moving_sim_time_ns=1e6,
    moving_lifetimes_ns=(0.25e6,),
    marking_rate=3,
)


def micro_cfg(**kw):
    return ExperimentConfig(
        scale=MICRO_SCALE, seed=3, sim_time_ns=1e6, warmup_ns=3e5, **kw
    )


def micro_grid(seeds=(1, 2, 3, 4)):
    return [micro_cfg().with_(seed=s) for s in seeds]


# ---------------------------------------------------------------------------
# module-level run_fn implementations (picklable)

def payload_fn(cfg):
    """Cheap deterministic stand-in for run_experiment."""
    return f"ran:{cfg.name}:{cfg.seed}"


def always_fail(cfg):
    raise RuntimeError(f"boom {cfg.name}")


def fail_once_via_marker(cfg):
    """Fail the first attempt; the marker file makes retries succeed."""
    marker = cfg.name
    if not os.path.exists(marker):
        open(marker, "w").close()
        raise RuntimeError("first attempt dies")
    return "recovered"


def sleepy(cfg):
    time.sleep(0.5)
    return "too late"


def forbidden(cfg):
    raise AssertionError("cell was simulated despite a warm cache")


# ---------------------------------------------------------------------------


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, 3) == derive_seed(7, 3)

    def test_distinct_across_cells_and_bases(self):
        seeds = {derive_seed(7, i) for i in range(100)}
        assert len(seeds) == 100
        assert derive_seed(7, 0) != derive_seed(8, 0)

    def test_reseed_from_rewrites_cell_seeds(self):
        outcomes = run_cells(
            [micro_cfg(), micro_cfg()], run_fn=payload_fn, reseed_from=42
        )
        assert [o.config.seed for o in outcomes] == [
            derive_seed(42, 0),
            derive_seed(42, 1),
        ]


class TestRetryPolicy:
    def test_default_never_retries(self):
        assert not RetryPolicy().should_retry(1)

    def test_bounded(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry(1) and policy.should_retry(2)
        assert not policy.should_retry(3)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            max_attempts=9, backoff_s=1.0, backoff_factor=2.0, max_backoff_s=5.0
        )
        assert policy.delay_s(1) == 1.0
        assert policy.delay_s(2) == 2.0
        assert policy.delay_s(5) == 5.0  # capped

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_s=-1)


class TestSerialIdentity:
    """jobs=1 must be byte-identical to the historical serial drivers."""

    def test_campaign_matches_direct_run_experiment(self):
        cfgs = micro_grid((1, 2))
        campaign = run_campaign(cfgs, jobs=1)
        for cfg, outcome in zip(cfgs, campaign.outcomes):
            direct = run_experiment(cfg)
            assert outcome.status == "ok"
            assert outcome.result.rates_gbps == direct.rates_gbps
            assert outcome.result.groups == direct.groups

    def test_sweep_jobs1_csv_byte_identical_to_manual_serial(self):
        base = micro_cfg()
        grid = {"threshold": [7, 15]}
        # Hand-rolled historical serial sweep.
        import csv as _csv
        import io as _io

        rows = []
        for t in grid["threshold"]:
            cfg = base.with_(
                cc_params=base.resolved_cc_params().with_(threshold=t)
            )
            res = run_experiment(cfg)
            row = {"threshold": t}
            row.update(
                non_hotspot=res.non_hotspot,
                hotspot=res.hotspot,
                all_nodes=res.all_nodes,
                total=res.total,
                fecn_marks=res.fecn_marks,
                becns=res.becns,
                fairness=res.fairness(),
                retx_packets=res.retx_packets,
                failed_flows=res.failed_flows,
                cc_mechanism=res.config.cc_mechanism,
            )
            rows.append(row)
        out = _io.StringIO()
        writer = _csv.DictWriter(out, fieldnames=list(rows[0]))
        writer.writeheader()
        writer.writerows(rows)

        assert sweep(base, grid, jobs=1).to_csv() == out.getvalue()

    def test_table2_jobs1_matches_direct_phases(self):
        table = run_table2(TINY_SCALE, seed=5, jobs=1)
        base = ExperimentConfig(
            scale=TINY_SCALE, b_fraction=0.0, c_fraction_of_rest=0.8,
            seed=5, name="table2",
        )
        direct = run_experiment(base.with_(cc=True))
        assert table.hotspots_cc.rates_gbps == direct.rates_gbps
        assert table.rows()["hotspots_cc_non_hotspot_avg"] == direct.non_hotspot


class TestParallelEquality:
    """jobs>1 must produce exactly the jobs=1 cell results."""

    def test_pool_matches_serial_on_micro_grid(self):
        cfgs = micro_grid()
        serial = run_campaign(cfgs, jobs=1)
        pooled = run_campaign(cfgs, jobs=2)
        for a, b in zip(serial.outcomes, pooled.outcomes):
            assert b.status == "ok"
            assert a.result.rates_gbps == b.result.rates_gbps
            assert a.result.groups == b.result.groups
            assert a.result.fecn_marks == b.result.fecn_marks

    def test_sweep_jobs2_matches_jobs1(self):
        base = micro_cfg()
        grid = {"cc": [False, True]}
        assert sweep(base, grid, jobs=2).to_csv() == sweep(base, grid, jobs=1).to_csv()

    def test_outcomes_keep_submission_order(self):
        cfgs = [micro_cfg(name=f"cell{i}").with_(seed=i) for i in range(5)]
        outcomes = run_cells(cfgs, jobs=2, run_fn=payload_fn)
        assert [o.index for o in outcomes] == list(range(5))
        assert [o.result for o in outcomes] == [f"ran:cell{i}:{i}" for i in range(5)]


class TestFaultTolerance:
    def test_failure_is_retried_then_recorded_not_raised(self):
        campaign = run_campaign(
            [micro_cfg(name="a"), micro_cfg(name="b")],
            jobs=2,
            run_fn=always_fail,
            retry=RetryPolicy(max_attempts=3),
        )
        assert [o.status for o in campaign.outcomes] == ["failed", "failed"]
        assert all(o.attempts == 3 for o in campaign.outcomes)
        assert "RuntimeError: boom a" in campaign.outcomes[0].error
        # The manifest carries the per-cell error records.
        assert campaign.manifest.failures == 2
        assert campaign.manifest.retries == 4
        records = campaign.manifest.failed_cells()
        assert len(records) == 2 and records[0].error

    def test_flaky_cell_recovers_in_pool(self, tmp_path):
        marker = str(tmp_path / "marker")
        campaign = run_campaign(
            [micro_cfg(name=marker)],
            jobs=2,
            run_fn=fail_once_via_marker,
            retry=RetryPolicy(max_attempts=3),
        )
        (outcome,) = campaign.outcomes
        assert outcome.status == "ok"
        assert outcome.attempts == 2
        assert outcome.result == "recovered"

    def test_flaky_cell_recovers_serially(self, tmp_path):
        marker = str(tmp_path / "marker")
        campaign = run_campaign(
            [micro_cfg(name=marker)],
            jobs=1,
            run_fn=fail_once_via_marker,
            retry=RetryPolicy(max_attempts=2),
        )
        assert campaign.outcomes[0].status == "ok"
        assert campaign.manifest.retries == 1

    def test_timeout_surfaces_as_failed_record(self):
        campaign = run_campaign(
            [micro_cfg(name="hung")],
            jobs=2,
            run_fn=sleepy,
            timeout_s=0.1,
            retry=RetryPolicy(max_attempts=2),
        )
        (outcome,) = campaign.outcomes
        assert outcome.status == "failed"
        assert outcome.attempts == 2
        assert "TimeoutError" in outcome.error
        assert campaign.manifest.failures == 1

    def test_failure_does_not_sink_healthy_cells(self, tmp_path):
        # One poisoned cell (marker never created => always raises) among
        # healthy ones: the healthy cells complete normally.
        cfgs = [
            micro_cfg(name=str(tmp_path / "ok1")),
            micro_cfg(name="___nonexistent_dir___/marker"),
            micro_cfg(name=str(tmp_path / "ok2")),
        ]
        campaign = run_campaign(
            cfgs, jobs=2, run_fn=fail_once_via_marker,
            retry=RetryPolicy(max_attempts=2),
        )
        statuses = [o.status for o in campaign.outcomes]
        assert statuses[0] == "ok" and statuses[2] == "ok"
        assert statuses[1] == "failed"

    def test_sweep_strict_raises_campaign_error(self, monkeypatch):
        # Force every cell to fail fast via an invalid topology radix.
        campaign = run_campaign(
            [micro_cfg()], jobs=1, run_fn=always_fail
        )
        assert campaign.failed
        with pytest.raises(CampaignError, match="cell 0"):
            campaign.raise_on_failure()


class TestCache:
    def test_second_invocation_runs_zero_simulations(self, tmp_path):
        cfgs = micro_grid((1, 2))
        first = run_campaign(cfgs, jobs=1, cache=str(tmp_path))
        assert [o.status for o in first.outcomes] == ["ok", "ok"]
        # Same campaign again: every cell must come from the cache — the
        # forbidden run_fn would blow up on any simulation attempt.
        second = run_campaign(cfgs, jobs=1, cache=str(tmp_path), run_fn=forbidden)
        assert [o.status for o in second.outcomes] == ["cached", "cached"]
        assert second.manifest.cache_hits == 2
        for a, b in zip(first.outcomes, second.outcomes):
            assert a.result.rates_gbps == b.result.rates_gbps

    def test_partial_cache_only_runs_missing_cells(self, tmp_path):
        cfgs = micro_grid((1, 2))
        run_campaign([cfgs[0]], jobs=1, cache=str(tmp_path))
        campaign = run_campaign(cfgs, jobs=1, cache=str(tmp_path))
        assert [o.status for o in campaign.outcomes] == ["cached", "ok"]

    def test_cache_accepts_store_instance_and_counts(self, tmp_path):
        store = ResultStore(str(tmp_path))
        cache = CellCache(store)
        cfg = micro_cfg()
        run_campaign([cfg], jobs=1, cache=cache)
        assert cache.misses == 1 and cache.stores == 1
        assert cfg in store
        run_campaign([cfg], jobs=1, cache=cache, run_fn=forbidden)
        assert cache.hits == 1

    def test_corrupt_cache_entry_is_a_miss_not_a_crash(self, tmp_path):
        cfg = micro_cfg()
        first = run_campaign([cfg], jobs=1, cache=str(tmp_path))
        (entry,) = tmp_path.rglob("*.json")
        entry.write_text("garbage{")
        again = run_campaign([cfg], jobs=1, cache=str(tmp_path))
        assert again.outcomes[0].status == "ok"  # re-simulated, not crashed
        assert again.outcomes[0].result.rates_gbps == first.outcomes[0].result.rates_gbps
        # The fresh result overwrote the corrupt entry: next run hits.
        third = run_campaign([cfg], jobs=1, cache=str(tmp_path), run_fn=forbidden)
        assert third.outcomes[0].status == "cached"

    def test_pool_and_serial_share_the_cache(self, tmp_path):
        cfgs = micro_grid((1, 2, 3))
        run_campaign(cfgs, jobs=2, cache=str(tmp_path))
        second = run_campaign(cfgs, jobs=1, cache=str(tmp_path), run_fn=forbidden)
        assert [o.status for o in second.outcomes] == ["cached"] * 3


class TestManifestAndProgress:
    def test_manifest_written_and_round_trips(self, tmp_path):
        path = str(tmp_path / "manifest.json")
        campaign = run_campaign(
            [micro_cfg(name="m1"), micro_cfg(name="m2")],
            run_fn=payload_fn,
            manifest_path=path,
        )
        data = json.loads(open(path).read())
        assert data["total_cells"] == 2 and data["ok"] == 2
        loaded = RunManifest.load(path)
        assert loaded.to_dict() == campaign.manifest.to_dict()
        assert [c.key for c in loaded.cells] == [o.key for o in campaign.outcomes]

    def test_manifest_keys_match_config_key(self):
        cfg = micro_cfg()
        campaign = run_campaign([cfg], run_fn=payload_fn)
        assert campaign.outcomes[0].key == config_key(cfg)

    def test_progress_counters_and_render(self, tmp_path):
        reporter = ProgressReporter()
        cfgs = micro_grid((1, 2))
        run_campaign(cfgs, jobs=1, cache=str(tmp_path), progress=reporter)
        assert reporter.done == 2 and reporter.ok == 2 and reporter.cached == 0
        line = reporter.render()
        assert "cells 2/2" in line and "done in" in line

        reporter2 = ProgressReporter()
        run_campaign(cfgs, jobs=1, cache=str(tmp_path), progress=reporter2,
                     run_fn=forbidden)
        assert reporter2.cached == 2
        assert "2 cached" in reporter2.render()

    def test_progress_streams_lines(self, capsys):
        import sys

        reporter = ProgressReporter(stream=sys.stderr)
        run_campaign([micro_cfg(name="s")], run_fn=payload_fn, progress=reporter)
        err = capsys.readouterr().err
        assert "cells 1/1" in err

    def test_eta_uses_pool_width(self):
        clock = iter([0.0, 10.0, 20.0, 30.0]).__next__
        reporter = ProgressReporter(clock=lambda: 0.0)
        reporter.start(total=4, jobs=2)
        from repro.parallel.pool import CellOutcome

        reporter.on_outcome(CellOutcome(
            index=0, config=None, key="k", status="ok",
            attempts=1, wall_seconds=10.0,
        ))
        # 3 cells left at 10s each over 2 workers.
        assert reporter.eta_seconds() == pytest.approx(15.0)


class TestValidation:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError, match="jobs"):
            run_campaign([micro_cfg()], jobs=0, run_fn=payload_fn)

    def test_empty_campaign(self):
        campaign = run_campaign([], jobs=1)
        assert campaign.outcomes == [] and campaign.manifest.total_cells == 0
