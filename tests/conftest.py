"""Shared test fixtures and helpers."""

from __future__ import annotations

import os

import pytest

from repro.core import CCManager, CCParams
from repro.engine import RngRegistry, Simulator
from repro.experiments.config import ScaleProfile
from repro.metrics import Collector
from repro.network import HcaConfig, Network, NetworkConfig
from repro.topology import folded_clos, three_stage_fat_tree
from repro.traffic import BNodeSource, FixedRateSource, HotspotSchedule

try:
    from hypothesis import settings
except ImportError:  # pragma: no cover - hypothesis ships with the image
    settings = None

if settings is not None:
    # "ci" is the default: no wall-clock deadline (the simulator's first
    # call warms caches and would trip flaky DeadlineExceeded), and
    # derandomized so a red run reproduces byte-for-byte. print_blob
    # makes hypothesis print the @reproduce_failure seed on failure.
    settings.register_profile(
        "ci", deadline=None, derandomize=True, print_blob=True
    )
    settings.register_profile("dev", deadline=None, print_blob=True)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the golden trace-digest fixtures under tests/golden/",
    )


@pytest.fixture
def update_golden(request):
    return request.config.getoption("--update-golden")


# A micro scale profile so experiment-layer tests run in milliseconds.
MICRO_SCALE = ScaleProfile(
    name="micro",
    radix=4,
    n_hotspots=2,
    sim_time_ns=6e6,
    warmup_ns=3e6,
    cct_slope=0.5,
    moving_sim_time_ns=4e6,
    moving_lifetimes_ns=(0.5e6,),
    marking_rate=3,
)


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def rng():
    return RngRegistry(12345)


def build_network(
    sim,
    *,
    radix: int = 4,
    collector: Collector | None = None,
    cc: bool = False,
    cc_params: CCParams | None = None,
    net_cfg: NetworkConfig | None = None,
):
    """A small live fat-tree network, optionally with CC installed.

    Returns ``(network, collector, manager_or_None)``.
    """
    topo = three_stage_fat_tree(radix)
    if collector is None:
        collector = Collector(topo.n_hosts, warmup_ns=0.0)
    net = Network(sim, topo, net_cfg or NetworkConfig(), collector=collector)
    manager = None
    if cc:
        manager = CCManager(
            cc_params or CCParams.paper_table1().with_(cct_slope=0.5)
        ).install(net)
    return net, collector, manager


def attach_fixed_flow(net, rng, src: int, dst: int, rate_gbps: float = 13.5):
    """Attach a single-destination constant-rate source to HCA ``src``."""
    gen = FixedRateSource(
        src, net.topology.n_hosts, dst, rate_gbps, rng.stream("gen", src)
    )
    gen.bind(net.hcas[src])
    net.hcas[src].attach_generator(gen)
    return gen


def attach_hotspot_contributors(net, rng, hotspot: int, contributors):
    """All ``contributors`` saturate ``hotspot`` (C-node behaviour)."""
    schedule = HotspotSchedule([hotspot])
    gens = []
    for node in contributors:
        gen = BNodeSource(
            node,
            net.topology.n_hosts,
            1.0,
            rng.stream("gen", node),
            hotspot=lambda s=schedule: s.target(0),
        )
        gen.bind(net.hcas[node])
        net.hcas[node].attach_generator(gen)
        gens.append(gen)
    return schedule, gens
