"""Property tests for every registered congestion-control mechanism.

The arena only compares mechanisms fairly if they all honour the
reaction-point contract (:mod:`repro.cc.base`):

* the injection-rate fraction stays in ``(0, 1]`` — a fraction of link
  rate, never zero (a flow can always eventually inject) and never
  above full rate;
* with no feedback, successive timer fires never decrease the rate and
  eventually restore full rate, after which the recovery timer stops
  rearming (the event queue drains);
* rates move **only** on feedback (``on_becn``) or a timer fire —
  injections and queries are observationally pure;
* feedback never *raises* a rate.

Each property runs against every registry entry — including the
paper's ``"ib"`` table mechanism through its ``rate_of`` view — so a
newly registered mechanism is covered automatically.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cc import CCConfig, mechanism_spec
from repro.core import CCParams

#: Generous bound on recovery length: ib needs up to CCTI_Limit fires,
#: dcqcn's alpha decay needs ~200 quiet periods before its timer stops.
MAX_TIMER_FIRES = 2000

FLOWS = ((0, 1), (0, 2), (3, 1))


class _FakeSim:
    """Minimal scheduler: callbacks fire in timestamp order on demand."""

    def __init__(self) -> None:
        self.now = 0.0
        self.queue = []

    def schedule(self, delay, fn) -> None:
        self.queue.append((self.now + delay, fn))

    def fire_one(self) -> bool:
        if not self.queue:
            return False
        self.queue.sort(key=lambda item: item[0])
        t, fn = self.queue.pop(0)
        self.now = max(self.now, t)
        fn()
        return True


class _FakeLink:
    byte_time_ns = 0.8


class _FakeObuf:
    def __init__(self) -> None:
        self.link = _FakeLink()
        self.capacity = 128 * 1024
        self.queues = [[] for _ in range(4)]  # empty VLs: never paused


class _FakeHca:
    node_id = 0

    def __init__(self) -> None:
        self.sim = _FakeSim()
        self.obuf = _FakeObuf()

    def kick(self) -> None:
        pass


class _Pkt:
    __slots__ = ("flow", "sl", "wire_size")

    def __init__(self, flow, sl=0, wire_size=2080):
        self.flow = flow
        self.sl = sl
        self.wire_size = wire_size


def build(name: str):
    """One reaction point of mechanism ``name`` on a fake HCA."""
    cc_config = CCConfig.make(name).validate()
    spec = mechanism_spec(name)
    options = cc_config.resolved_options()
    params = CCParams.paper_table1()
    shared = spec.prepare(params, options)
    hca = _FakeHca()
    return spec.factory(hca, params, options, shared), hca


MECHANISMS = ("ib", "dctcp", "reno", "dcqcn")

events_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("becn"), st.integers(0, len(FLOWS) - 1)),
        st.tuples(st.just("inject"), st.integers(0, len(FLOWS) - 1)),
        st.tuples(st.just("timer"), st.just(0)),
    ),
    max_size=60,
)


def _apply(cc, hca, kind, idx) -> None:
    if kind == "becn":
        cc.on_becn(FLOWS[idx], 0)
    elif kind == "inject":
        cc.on_inject(_Pkt(FLOWS[idx]))
    else:
        hca.sim.fire_one()


@pytest.mark.parametrize("name", MECHANISMS)
@given(events=events_strategy)
@settings(max_examples=50)
def test_rate_stays_in_unit_interval(name, events):
    cc, hca = build(name)
    for kind, idx in events:
        _apply(cc, hca, kind, idx)
        for flow in FLOWS:
            rate = cc.rate_of(flow, 0)
            assert 0.0 < rate <= 1.0
            assert cc.next_allowed(flow, 0) >= 0.0


@pytest.mark.parametrize("name", MECHANISMS)
@given(becns=st.integers(min_value=1, max_value=40))
@settings(max_examples=25)
def test_monotone_recovery_without_feedback(name, becns):
    """No feedback -> rate never drops, reaches 1.0, timer stops."""
    cc, hca = build(name)
    flow = FLOWS[0]
    for _ in range(becns):
        cc.on_becn(flow, 0)
    # One fire closes any observation window still holding the feedback
    # (DCTCP cuts at window close); from here on no feedback is pending
    # since the last fire, so the contract demands monotone recovery.
    hca.sim.fire_one()
    last = cc.rate_of(flow, 0)
    fires = 0
    while hca.sim.fire_one():
        fires += 1
        assert fires <= MAX_TIMER_FIRES, "recovery timer never terminated"
        rate = cc.rate_of(flow, 0)
        assert rate >= last, "rate decreased with no feedback"
        last = rate
    assert last == 1.0
    assert cc.throttled_flows() == 0
    assert not hca.sim.queue  # fully recovered: timer stopped rearming


@pytest.mark.parametrize("name", MECHANISMS)
@given(
    becns=st.integers(min_value=0, max_value=10),
    injects=st.integers(min_value=0, max_value=20),
)
@settings(max_examples=25)
def test_no_rate_change_without_feedback_or_timer(name, becns, injects):
    """Injections and queries are pure w.r.t. every flow's rate."""
    cc, hca = build(name)
    flow = FLOWS[0]
    for _ in range(becns):
        cc.on_becn(flow, 0)
    before = [cc.rate_of(f, 0) for f in FLOWS]
    for _ in range(injects):
        cc.on_inject(_Pkt(flow))
    cc.next_allowed(flow, 0)
    cc.throttled_flows()
    cc.deepest_level()
    assert [cc.rate_of(f, 0) for f in FLOWS] == before


@pytest.mark.parametrize("name", MECHANISMS)
@given(becns=st.integers(min_value=1, max_value=30))
@settings(max_examples=25)
def test_feedback_never_raises_rate(name, becns):
    cc, hca = build(name)
    flow = FLOWS[0]
    last = cc.rate_of(flow, 0)
    for _ in range(becns):
        cc.on_becn(flow, 0)
        rate = cc.rate_of(flow, 0)
        assert rate <= last
        last = rate


@pytest.mark.parametrize("name", MECHANISMS)
def test_satisfies_congestion_control_protocol(name):
    from repro.cc import CongestionControl

    cc, _ = build(name)
    assert isinstance(cc, CongestionControl)
