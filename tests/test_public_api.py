"""Tests for the top-level public API."""

import pytest

import repro
from repro import quick_simulation


class TestPublicSurface:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3 and all(p.isdigit() for p in parts)


class TestQuickSimulation:
    def test_cc_off(self):
        res = quick_simulation(radix=4, cc=False, sim_time_ns=1e6, warmup_ns=2e5)
        assert len(res["rates_gbps"]) == 8
        assert res["fecn_marks"] == 0
        assert res["events"] > 0

    def test_cc_on_marks(self):
        res = quick_simulation(radix=4, cc=True, sim_time_ns=2e6, warmup_ns=2e5)
        assert res["fecn_marks"] > 0
        assert res["becns"] > 0

    def test_hotspot_receives_most(self):
        res = quick_simulation(radix=4, cc=False, sim_time_ns=2e6, warmup_ns=2e5)
        rates = res["rates_gbps"]
        assert rates[0] == max(rates)
        assert rates[0] > 12.0

    def test_deterministic(self):
        a = quick_simulation(radix=4, seed=9, sim_time_ns=1e6, warmup_ns=2e5)
        b = quick_simulation(radix=4, seed=9, sim_time_ns=1e6, warmup_ns=2e5)
        assert a["rates_gbps"] == b["rates_gbps"]
        assert a["events"] == b["events"]
