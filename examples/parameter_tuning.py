#!/usr/bin/env python3
"""Parameter tuning: why the paper calls CC configuration "nontrivial".

Sweeps the congestion threshold weight and the CCT slope around the
Table I operating point on a silent-forest workload, printing the
victim recovery and hotspot utilization for each setting. Mirrors the
paper's warning that "a bad configuration can result in low performance
and instability in the network".

Run:  python examples/parameter_tuning.py
"""

from repro.core import CCParams
from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments.config import SCALES


def run_with(params: CCParams, scale) -> tuple:
    cfg = ExperimentConfig(scale=scale, b_fraction=0.0, seed=11, cc_params=params)
    res = run_experiment(cfg)
    return res.non_hotspot, res.hotspot, res.fecn_marks


def main() -> None:
    scale = SCALES["quick"]
    base = CCParams.paper_table1().with_(cct_slope=0.5, marking_rate=3)

    baseline = run_experiment(
        ExperimentConfig(scale=scale, b_fraction=0.0, seed=11, cc=False)
    )
    print("Silent forest, radix-8 fat-tree, 4 hotspots, 80% C / 20% V")
    print(f"without CC: victims {baseline.non_hotspot:.2f} G, "
          f"hotspots {baseline.hotspot:.2f} G\n")

    print("Threshold weight sweep (Table I uses 15 = most sensitive):")
    print(f"{'weight':>7} {'victims':>9} {'hotspots':>9} {'FECN marks':>11}")
    for weight in (1, 5, 10, 15):
        v, h, m = run_with(base.with_(threshold=weight), scale)
        print(f"{weight:7d} {v:7.2f} G {h:7.2f} G {m:11d}")

    print("\nCCT slope sweep (deepest throttle = 1/(1 + slope*127)):")
    print(f"{'slope':>7} {'victims':>9} {'hotspots':>9}")
    for slope in (0.1, 0.5, 2.0, 8.0):
        v, h, _ = run_with(base.with_(cct_slope=slope), scale)
        print(f"{slope:7.1f} {v:7.2f} G {h:7.2f} G")

    print("\nToo-shallow throttling leaves the tree standing (victims low);")
    print("too-aggressive settings shave hotspot utilization. Table I plus")
    print("a topology-sized CCT hits both goals - the paper's core claim.")


if __name__ == "__main__":
    main()
