#!/usr/bin/env python3
"""Watch a congestion tree grow, get pruned, and move — live.

Uses the time-series sampler and the congestion-tree tracker to
visualize (in plain ASCII) what the paper describes qualitatively in
section III: the root queue builds until CC throttles the contributors,
and the tracker classifies the tree as silent / windy / moving
depending on the workload.

Run:  python examples/tree_dynamics.py
"""

from repro import (
    BNodeSource,
    CCManager,
    CCParams,
    Collector,
    HotspotSchedule,
    Network,
    NetworkConfig,
    RngRegistry,
    Simulator,
    three_stage_fat_tree,
)
from repro.metrics import CongestionTreeTracker, TimeSeries, sparkline

SIM_NS = 6e6
INTERVAL = 2e5


def run(kind: str) -> None:
    topo = three_stage_fat_tree(8)
    n = topo.n_hosts
    sim = Simulator()
    rng = RngRegistry(5)
    col = Collector(n, warmup_ns=0.0)
    net = Network(sim, topo, NetworkConfig(), collector=col)
    mgr = CCManager(
        CCParams.paper_table1().with_(cct_slope=0.5, marking_rate=3)
    ).install(net)

    lifetime = 1e6 if kind == "moving" else None
    schedule = HotspotSchedule.choose_initial(
        2, n, rng.stream("hs"), lifetime_ns=lifetime
    )
    p = {"silent": 1.0, "windy": 0.6, "moving": 1.0}[kind]
    for node in range(n):
        if node in schedule.current_targets:
            continue
        gen = BNodeSource(
            node, n, p, rng.stream("gen", node),
            hotspot=lambda s=schedule, k=node % 2: s.target(k),
        )
        gen.bind(net.hcas[node])
        net.hcas[node].attach_generator(gen)
    schedule.install(sim, net.hcas)

    hs0 = schedule.current_targets[0]
    att = topo.host_attachment(hs0)
    ts = TimeSeries(
        sim,
        INTERVAL,
        {
            "root_queue": TimeSeries.queue_probe(net.switches[att.switch_id], att.switch_port),
            "throttled": TimeSeries.throttle_probe(mgr),
        },
    ).start()
    tracker = CongestionTreeTracker(net, INTERVAL).start()
    net.run(until=SIM_NS)

    dyn = tracker.dynamics()
    print(f"--- {kind} workload " + "-" * (40 - len(kind)))
    print(f"root queue bytes : {sparkline(ts.samples['root_queue'])}")
    print(f"throttled flows  : {sparkline(ts.samples['throttled'])}")
    print(
        f"tracker: root churn {dyn.root_churn:.2f}, branch churn "
        f"{dyn.branch_churn:.2f}, congested {dyn.congested_fraction:.0%} "
        f"of samples -> classified **{dyn.classify()}**"
    )
    print()


def main() -> None:
    print("Congestion-tree dynamics on a radix-8 fat-tree, CC enabled\n")
    for kind in ("silent", "windy", "moving"):
        run(kind)
    print("The CC loop shows up as the root queue spiking then collapsing")
    print("while the throttled-flow count rises; the tracker's churn")
    print("scores recover the paper's silent/windy/moving taxonomy from")
    print("buffer state alone.")


if __name__ == "__main__":
    main()
