#!/usr/bin/env python3
"""Beyond fat-trees: IB CC on a 2-D mesh (the paper's open question).

The paper closes with: "Regarding Tori or Meshes, the picture is more
unclear, thus this question should form the basis for further
research." This example takes a first stab on a 4x4 mesh with
dimension-order routing: a hotspot in the mesh corner draws traffic
from every other node, a victim pair shares part of the congested
route, and we compare CC off/on with the same Table I parameters that
work on the fat-tree.

Run:  python examples/mesh_exploration.py
"""

from repro import (
    BNodeSource,
    CCManager,
    CCParams,
    Collector,
    FixedRateSource,
    HotspotSchedule,
    Network,
    NetworkConfig,
    RngRegistry,
    Simulator,
)
from repro.topology import mesh

SIM_TIME_NS = 8e6
WARMUP_NS = 3e6
HOTSPOT = 0        # corner of the mesh
VICTIM_SRC = 5     # interior node...
VICTIM_DST = 1     # ...sending through the corner's neighbourhood


def run(cc_enabled: bool) -> dict:
    topo = mesh([4, 4])
    n = topo.n_hosts
    sim = Simulator()
    rng = RngRegistry(9)
    collector = Collector(n, warmup_ns=WARMUP_NS)
    net = Network(sim, topo, NetworkConfig(), collector=collector)
    if cc_enabled:
        CCManager(
            CCParams.paper_table1().with_(cct_slope=0.5, marking_rate=3)
        ).install(net)

    schedule = HotspotSchedule([HOTSPOT])
    for node in range(n):
        if node in (HOTSPOT, VICTIM_SRC, VICTIM_DST):
            continue
        gen = BNodeSource(
            node, n, 1.0, rng.stream("gen", node),
            hotspot=lambda: schedule.target(0),
        )
        gen.bind(net.hcas[node])
        net.hcas[node].attach_generator(gen)

    victim = FixedRateSource(VICTIM_SRC, n, VICTIM_DST, 13.5, rng.stream("victim"))
    victim.bind(net.hcas[VICTIM_SRC])
    net.hcas[VICTIM_SRC].attach_generator(victim)

    net.run(until=SIM_TIME_NS)
    return {
        "hotspot": collector.rx_rate_gbps(HOTSPOT, SIM_TIME_NS),
        "victim": collector.rx_rate_gbps(VICTIM_DST, SIM_TIME_NS),
        "total": collector.total_rx_rate_gbps(SIM_TIME_NS),
    }


def main() -> None:
    print("IB CC on a 4x4 mesh, dimension-order routing")
    print("13 contributors -> corner hotspot; victim 5 -> 1 crosses the")
    print("congested neighbourhood.\n")
    print(f"{'':8} {'hotspot':>9} {'victim':>9} {'total':>9}")
    off = run(False)
    on = run(True)
    print(f"{'CC off':8} {off['hotspot']:7.2f} G {off['victim']:7.2f} G {off['total']:7.1f} G")
    print(f"{'CC on':8} {on['hotspot']:7.2f} G {on['victim']:7.2f} G {on['total']:7.1f} G")
    print()
    print(f"Victim gain: {on['victim'] / max(off['victim'], 1e-9):.1f}x; "
          f"total gain: {on['total'] / off['total']:.2f}x")
    print("The mechanism transfers: end-node congestion roots at the host")
    print("port (Victim Mask) regardless of topology. What changes on a")
    print("mesh is the *tree shape* - branches follow dimension order, so")
    print("victims sharing early dimensions suffer most. Tori add the")
    print("deadlock question (dateline VLs) - the open research the paper")
    print("points to; see repro.topology.torus.")


if __name__ == "__main__":
    main()
