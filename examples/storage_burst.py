#!/usr/bin/env python3
"""Storage-burst scenario: compute nodes checkpointing to burst buffers.

The paper motivates windy congestion trees with "compute nodes that
communicate and exchange data with their peers, while at the same time
store data at a set of storage nodes" (section III-B). This example
models exactly that: every compute node is a B node sending a fraction
``p`` of its traffic to its assigned storage node (4 storage nodes
serve 28 compute nodes) and the rest to peers, and we sweep p to find
where the fabric hurts most and how much IB CC buys back.

Run:  python examples/storage_burst.py
"""

from repro import (
    BNodeSource,
    CCManager,
    CCParams,
    Collector,
    HotspotSchedule,
    Network,
    NetworkConfig,
    RngRegistry,
    Simulator,
    group_rates,
    three_stage_fat_tree,
)
from repro.traffic import assign_roles

SIM_TIME_NS = 8e6
WARMUP_NS = 3e6
N_STORAGE = 4


def run(p: float, cc_enabled: bool, seed: int = 11) -> dict:
    topo = three_stage_fat_tree(8)
    n = topo.n_hosts
    sim = Simulator()
    rng = RngRegistry(seed)
    collector = Collector(n, warmup_ns=WARMUP_NS)
    net = Network(sim, topo, NetworkConfig(), collector=collector)
    if cc_enabled:
        CCManager(
            CCParams.paper_table1().with_(cct_slope=0.5, marking_rate=3)
        ).install(net)

    storage = HotspotSchedule.choose_initial(N_STORAGE, n, rng.stream("storage"))
    mix = assign_roles(
        n,
        b_fraction=1.0,  # every node checkpoints
        n_subsets=N_STORAGE,
        hotspots=storage.current_targets,
        rng=rng.stream("mix"),
    )
    for node in range(n):
        gen = BNodeSource(
            node,
            n,
            p,
            rng.stream("gen", node),
            hotspot=lambda s=storage, k=mix.subset_of[node]: s.target(k),
        )
        gen.bind(net.hcas[node])
        net.hcas[node].attach_generator(gen)

    net.run(until=SIM_TIME_NS)
    groups = group_rates(
        collector.all_rx_rates_gbps(SIM_TIME_NS), storage.current_targets
    )
    return groups


def main() -> None:
    print("Checkpoint burst on a radix-8 fat-tree: 4 storage targets,")
    print("every compute node stores p% and talks to peers (1-p)%\n")
    print(f"{'p%':>4} {'peer rcv, no CC':>16} {'peer rcv, CC':>13} "
          f"{'storage, CC':>12} {'total gain':>11}")
    for p in (0.2, 0.4, 0.6, 0.8):
        off = run(p, cc_enabled=False)
        on = run(p, cc_enabled=True)
        gain = on["total"] / off["total"]
        print(
            f"{p * 100:4.0f} {off['non_hotspot']:14.2f} G {on['non_hotspot']:11.2f} G "
            f"{on['hotspot']:10.2f} G {gain:10.2f}x"
        )
    print("\nPeer traffic (the 'non-hotspot' column) collapses under the")
    print("checkpoint trees without CC and tracks its fair share with CC,")
    print("while the storage nodes stay at their ~13.6 Gbit/s ingest cap.")


if __name__ == "__main__":
    main()
