#!/usr/bin/env python3
"""Quickstart: grow a congestion tree, then prune it with IB CC.

Builds a small three-stage fat-tree (32 nodes), points seven
contributors at one hotspot, and shows the before/after of enabling the
InfiniBand congestion control mechanism with the paper's Table I
parameters: without CC a victim flow sharing an uplink with the
contributors is HOL-blocked; with CC it runs at nearly full rate while
the hotspot stays saturated.

Run:  python examples/quickstart.py
"""

from repro import (
    BNodeSource,
    CCManager,
    CCParams,
    Collector,
    FixedRateSource,
    HotspotSchedule,
    Network,
    NetworkConfig,
    RngRegistry,
    Simulator,
    three_stage_fat_tree,
)

SIM_TIME_NS = 8e6  # 8 ms of network time
WARMUP_NS = 3e6


def run(cc_enabled: bool) -> dict:
    topo = three_stage_fat_tree(8)  # 8 leaves x 4 hosts = 32 nodes
    sim = Simulator()
    rng = RngRegistry(42)
    collector = Collector(topo.n_hosts, warmup_ns=WARMUP_NS)
    net = Network(sim, topo, NetworkConfig(), collector=collector)

    if cc_enabled:
        params = CCParams.paper_table1().with_(cct_slope=0.5, marking_rate=3)
        CCManager(params).install(net)

    # Contributors 2..6 all saturate node 0 (a storage node, say).
    hotspot = HotspotSchedule([0])
    for node in range(2, 7):
        gen = BNodeSource(
            node, topo.n_hosts, p=1.0, rng=rng.stream("gen", node),
            hotspot=lambda: hotspot.target(0),
        )
        gen.bind(net.hcas[node])
        net.hcas[node].attach_generator(gen)

    # A victim: node 7 sends to idle node 8, sharing the leaf-1 uplink
    # with three of the contributors.
    victim = FixedRateSource(7, topo.n_hosts, 8, 13.5, rng.stream("gen", 7))
    victim.bind(net.hcas[7])
    net.hcas[7].attach_generator(victim)

    net.run(until=SIM_TIME_NS)
    return {
        "hotspot_gbps": collector.rx_rate_gbps(0, SIM_TIME_NS),
        "victim_gbps": collector.rx_rate_gbps(8, SIM_TIME_NS),
        "events": sim.events_executed,
    }


def main() -> None:
    print("InfiniBand congestion control quickstart (radix-8 fat-tree)")
    print(f"{'':14} {'hotspot rcv':>12} {'victim rcv':>12}")
    off = run(cc_enabled=False)
    print(f"{'CC off':14} {off['hotspot_gbps']:10.2f} G {off['victim_gbps']:10.2f} G")
    on = run(cc_enabled=True)
    print(f"{'CC on':14} {on['hotspot_gbps']:10.2f} G {on['victim_gbps']:10.2f} G")
    print()
    factor = on["victim_gbps"] / max(off["victim_gbps"], 1e-9)
    print(f"Victim speedup from enabling CC: {factor:.1f}x")
    print("The hotspot stays ~saturated (13.6 Gbit/s sink cap) either way;")
    print("CC's job is rescuing everyone else.")


if __name__ == "__main__":
    main()
