#!/usr/bin/env python3
"""Virtualized-cluster scenario: unpredictable, moving hotspots.

The paper's most dynamic case (section III-C) "could resemble a cluster
running a set of virtual machines or virtual jobs, where the
communication pattern is unknown". This example moves the hotspots
every ``lifetime`` and reports how the value of congestion control
decays as churn increases — including the feedback-loop argument: the
CCTI recovery timer (150 x 1.024 us) becomes slow relative to a 1 ms
hotspot lifetime.

Run:  python examples/virtualized_cluster.py
"""

from repro.experiments import run_moving_point
from repro.experiments.config import SCALES


def main() -> None:
    scale = SCALES["quick"]
    print("Moving hotspots on a radix-8 fat-tree (100% B nodes, p=60%)")
    timer_ns = 150 * 1024
    print(f"CCTI recovery timer: {timer_ns / 1000:.1f} us per decrement; "
          f"a deep throttle takes ~{127 * timer_ns / 1e6:.1f} ms to unwind\n")
    print(f"{'lifetime':>9} {'all rcv, no CC':>15} {'all rcv, CC':>12} {'CC gain':>8}")
    for lifetime_ms in (4.0, 2.0, 1.0, 0.5):
        pt = run_moving_point(
            lifetime_ms * 1e6, scale, b_fraction=1.0, p=0.6, seed=11
        )
        print(
            f"{lifetime_ms:7.1f}ms {pt.off.all_nodes:13.2f} G "
            f"{pt.on.all_nodes:10.2f} G {pt.improvement:7.2f}x"
        )
    print("\nAs hotspot churn rises, traffic self-spreads (the no-CC column")
    print("grows) and the closed feedback loop falls behind - the CC")
    print("advantage narrows, exactly the trend of the paper's figure 10.")


if __name__ == "__main__":
    main()
