#!/usr/bin/env python3
"""Victim latency: what congestion trees feel like before throughput dies.

Throughput collapse is the paper's headline metric, but the first
symptom of a growing congestion tree is latency: a victim's packets
queue behind hotspot backlog at every shared buffer. This example
measures a victim flow's median and tail latency with the congestion
tree standing (CC off) and pruned (CC on).

Run:  python examples/victim_latency.py
"""

from repro import (
    BNodeSource,
    CCManager,
    CCParams,
    Collector,
    FixedRateSource,
    HotspotSchedule,
    Network,
    NetworkConfig,
    RngRegistry,
    Simulator,
    three_stage_fat_tree,
)
from repro.metrics import LatencyTracker

SIM_NS = 8e6
WARMUP = 3e6
VICTIM_SRC, VICTIM_DST = 7, 8  # shares leaf 1's uplink with contributors


def run(cc_enabled: bool) -> dict:
    topo = three_stage_fat_tree(8)
    n = topo.n_hosts
    sim = Simulator()
    rng = RngRegistry(21)
    tracker = LatencyTracker(Collector(n, warmup_ns=WARMUP), warmup_ns=WARMUP)
    net = Network(sim, topo, NetworkConfig(), collector=tracker)
    if cc_enabled:
        CCManager(
            CCParams.paper_table1().with_(cct_slope=0.5, marking_rate=3)
        ).install(net)

    hotspot = HotspotSchedule([0])
    for node in range(2, 7):
        gen = BNodeSource(node, n, 1.0, rng.stream("gen", node),
                          hotspot=lambda: hotspot.target(0))
        gen.bind(net.hcas[node])
        net.hcas[node].attach_generator(gen)
    victim = FixedRateSource(VICTIM_SRC, n, VICTIM_DST, 6.0, rng.stream("victim"))
    victim.bind(net.hcas[VICTIM_SRC])
    net.hcas[VICTIM_SRC].attach_generator(victim)

    net.run(until=SIM_NS)
    pcts = tracker.percentiles([VICTIM_DST], qs=(50.0, 99.0))
    return {
        "p50_us": pcts[50.0] / 1000.0,
        "p99_us": pcts[99.0] / 1000.0,
        "rate": tracker.rx_rate_gbps(VICTIM_DST, SIM_NS),
    }


def main() -> None:
    print("Victim flow (6 Gbit/s, sharing an uplink with 3 contributors)")
    print(f"{'':8} {'p50 latency':>12} {'p99 latency':>12} {'delivered':>10}")
    for label, cc in (("CC off", False), ("CC on", True)):
        r = run(cc)
        print(f"{label:8} {r['p50_us']:9.1f} us {r['p99_us']:9.1f} us "
              f"{r['rate']:8.2f} G")
    print()
    print("With the tree standing, every victim packet crosses buffers")
    print("full of hotspot backlog; pruning the tree returns latency to")
    print("the microsecond regime even before throughput fully recovers.")


if __name__ == "__main__":
    main()
