"""Engine microbenchmarks: the hot paths the experiments run on.

These are conventional multi-round benchmarks (unlike the experiment
benches) and track regressions in the event loop and the per-packet
datapath.
"""

from repro.engine import RngRegistry, Simulator
from repro.metrics import NullCollector
from repro.network import Network, NetworkConfig
from repro.topology import three_stage_fat_tree
from repro.traffic import FixedRateSource


def test_bench_event_loop_throughput(benchmark):
    """Events per second through the raw scheduler."""

    def run_10k_events():
        sim = Simulator()

        def chain(remaining=10_000):
            if remaining:
                sim.schedule(1.0, chain, remaining - 1)

        # Seed a few interleaved chains so the heap stays non-trivial.
        for _ in range(8):
            sim.schedule(0.5, chain, 1250)
        sim.run()
        return sim.events_executed

    executed = benchmark(run_10k_events)
    assert executed >= 10_000


def test_bench_single_flow_datapath(benchmark):
    """Packets per second through HCA -> leaf -> spine -> leaf -> HCA."""

    def run_flow():
        topo = three_stage_fat_tree(4)
        sim = Simulator()
        net = Network(sim, topo, NetworkConfig(), collector=NullCollector())
        gen = FixedRateSource(0, topo.n_hosts, 7, 13.5, RngRegistry(1).stream("g"))
        gen.bind(net.hcas[0])
        net.hcas[0].attach_generator(gen)
        net.run(until=1e6)  # 1 ms of virtual time, ~800 packets
        return gen.packets_emitted

    packets = benchmark(run_flow)
    assert packets > 500


def test_bench_network_construction_648(benchmark):
    """Setup cost of the full Sun DCS 648 network (54 switches)."""
    from repro.topology import sun_dcs_648

    def build():
        sim = Simulator()
        return Network(sim, sun_dcs_648(), NetworkConfig(), collector=NullCollector())

    net = benchmark(build)
    assert len(net.hcas) == 648
    assert len(net.switches) == 54
