"""In-fabric congestion from link frequency scaling (paper section I).

Not a paper artifact — the introduction lists link frequency/voltage
scaling among congestion causes but the evaluation only studies
end-node hotspots. This bench measures the complementary case: a leaf
uplink degraded to 25 % rate becomes an in-fabric congestion root
(detected by the credit rule, no Victim Mask), and CC both protects
victims sharing other resources with the contributors and shares the
slow link fairly. Uses the bench-scale Marking_Rate damping (see
DESIGN.md §3.9): with undamped per-packet marking a single full-rate
flow into its own sink collects enough false marks to lose ~30% of its
rate at this scale.
"""

from repro.core import CCManager, CCParams
from repro.engine import RngRegistry, Simulator
from repro.metrics import Collector, jain_fairness
from repro.network import Network, NetworkConfig, degrade_uplink_between
from repro.topology import three_stage_fat_tree
from repro.traffic import FixedRateSource

from benchmarks.conftest import run_once

MS = 1e6


def _run(cc: bool, seed: int):
    topo = three_stage_fat_tree(8)
    sim = Simulator()
    col = Collector(topo.n_hosts, warmup_ns=3 * MS, track_pairs=True)
    net = Network(sim, topo, NetworkConfig(), collector=col)
    mgr = None
    if cc:
        mgr = CCManager(
            CCParams.paper_table1().with_(cct_slope=0.5, marking_rate=3)
        ).install(net)
    # Leaf 0's uplink to spine 0 runs at 5 Gbit/s.
    degrade_uplink_between(net, leaf=0, spine=0, factor=0.25)
    rng = RngRegistry(seed)
    gens = []
    # Hosts 0..2 (leaf 0) all route via spine 0 (destinations = 0 mod 4):
    # three 13.5 G flows into a 5 G link.
    flows = [(0, 8), (1, 12), (2, 16)]
    for src, dst in flows:
        gen = FixedRateSource(src, topo.n_hosts, dst, 13.5, rng.stream("g", src))
        gen.bind(net.hcas[src])
        net.hcas[src].attach_generator(gen)
        gens.append(gen)
    # A victim on the same leaf using the *other* spines.
    victim = FixedRateSource(3, topo.n_hosts, 9, 13.5, rng.stream("victim"))
    victim.bind(net.hcas[3])
    net.hcas[3].attach_generator(victim)
    net.run(until=10 * MS)
    shares = [col.rx_by_src.get((s, d), 0) for s, d in flows]
    return {
        "bottleneck_total": sum(shares) * 8 / (7 * MS),
        "fairness": jain_fairness(shares),
        "victim": col.rx_rate_gbps(9, 10 * MS),
        "marks": mgr.total_marks() if mgr else 0,
    }


def test_bench_degraded_uplink(benchmark, seed):
    def both():
        return _run(False, seed), _run(True, seed)

    off, on = run_once(benchmark, both)
    print("\nDegraded uplink (20 -> 5 Gbit/s), three contributors + victim")
    print(f"{'':8} {'bottleneck':>11} {'fairness':>9} {'victim':>8} {'marks':>7}")
    for label, r in (("CC off", off), ("CC on", on)):
        print(
            f"{label:8} {r['bottleneck_total']:9.2f} G {r['fairness']:9.3f} "
            f"{r['victim']:6.2f} G {r['marks']:7d}"
        )

    # The slow link stays utilized either way (backpressure or CC)...
    assert off["bottleneck_total"] > 4.0
    assert on["bottleneck_total"] > 4.0
    # ...CC marks at the in-fabric root and keeps sharing fair...
    assert on["marks"] > 0
    assert on["fairness"] > 0.9
    # ...and the victim on healthy spines keeps (nearly) full rate.
    assert on["victim"] > 11.0
