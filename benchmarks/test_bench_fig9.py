"""Figure 9 — moving silent congestion trees (hotspot lifetime sweep).

Paper (648 nodes, lifetimes 10 ms -> 1 ms):

* (a) 20 % V / 80 % C: CC-on 723 vs CC-off 467 Mbit/s at 10 ms (+55 %),
  shrinking to +4 % at 1 ms;
* (b) 60 % V / 40 % C: +160 % at 10 ms shrinking to +10 % at 1 ms.

Shape criteria: CC-on >= CC-off at every lifetime; the CC advantage
shrinks as lifetimes shrink; the general receive level rises as the
traffic self-spreads.
"""

from repro.experiments import run_moving_figure

from benchmarks.conftest import run_once


def _check(fig):
    pts = fig.points  # ordered from the longest lifetime down
    for pt in pts:
        assert pt.improvement > 0.97, f"lifetime {pt.lifetime_ns}"
    # The advantage at the longest lifetime clearly beats the shortest.
    assert pts[0].improvement > pts[-1].improvement
    # Traffic self-spreads as hotspots move faster: the no-CC rate at
    # the shortest lifetime is at least that of the longest.
    assert pts[-1].off.all_nodes >= 0.95 * pts[0].off.all_nodes


def test_bench_fig9a_20v_80c(benchmark, scale, seed):
    fig = run_once(
        benchmark,
        run_moving_figure,
        scale,
        c_fraction_of_rest=0.8,
        label="20% V / 80% C (paper fig 9a)",
        seed=seed,
    )
    print()
    print(fig.format())
    _check(fig)


def test_bench_fig9b_60v_40c(benchmark, scale, seed):
    fig = run_once(
        benchmark,
        run_moving_figure,
        scale,
        c_fraction_of_rest=0.4,
        label="60% V / 40% C (paper fig 9b)",
        seed=seed,
    )
    print()
    print(fig.format())
    _check(fig)
