"""Figure 6 — windy forest with 50 % B nodes, p swept 0..100 %.

Paper (648 nodes): same trends as figure 5 with a steeper tmax slope;
the improvement curve becomes more ∩-shaped as x grows.
"""

from benchmarks.windy_common import run_and_check


def test_bench_fig6_windy_50pct(benchmark, scale, seed):
    run_and_check(benchmark, scale, seed, 0.50, paper_peak=10.0)
