"""Adaptive routing vs congestion control (paper section I discussion).

The paper argues AR cannot substitute for CC on end-node congestion:
"trying to reroute around the problem will only make the branches of
the congestion tree spread out and cause more HOL blocking". This bench
measures the four-way comparison on the silent-forest scenario:
deterministic/adaptive routing x CC off/on.
"""

from repro.core import CCManager, CCParams
from repro.engine import RngRegistry, Simulator
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_generators
from repro.metrics import Collector, group_rates
from repro.network import Network, NetworkConfig
from repro.network.adaptive import install_adaptive_routing
from repro.topology import three_stage_fat_tree
from repro.traffic import HotspotSchedule

from benchmarks.conftest import run_once


def _run(scale, seed, *, adaptive: bool, cc: bool):
    cfg = ExperimentConfig(scale=scale, b_fraction=0.0, seed=seed, cc=cc)
    topo = three_stage_fat_tree(scale.radix)
    sim = Simulator()
    rng = RngRegistry(seed)
    col = Collector(topo.n_hosts, warmup_ns=cfg.resolved_warmup())
    net = Network(sim, topo, NetworkConfig(), collector=col)
    if adaptive:
        install_adaptive_routing(net)
    if cc:
        CCManager(cfg.resolved_cc_params()).install(net)
    schedule = HotspotSchedule.choose_initial(
        scale.n_hotspots, topo.n_hosts, rng.stream("hotspots")
    )
    generators, _ = build_generators(cfg, topo.n_hosts, rng, schedule)
    for node, gen in enumerate(generators):
        if gen is not None:
            gen.bind(net.hcas[node])
            net.hcas[node].attach_generator(gen)
    sim_time = cfg.resolved_sim_time()
    net.run(until=sim_time)
    return group_rates(col.all_rx_rates_gbps(sim_time), schedule.current_targets)


def test_bench_ar_vs_cc(benchmark, scale, seed):
    def four_way():
        return {
            (adaptive, cc): _run(scale, seed, adaptive=adaptive, cc=cc)
            for adaptive in (False, True)
            for cc in (False, True)
        }

    results = run_once(benchmark, four_way)
    print("\nAdaptive routing vs congestion control (silent forest)")
    print(f"{'routing':>13} {'CC':>4} {'non-hotspot':>12} {'hotspot':>9} {'total':>9}")
    for (adaptive, cc), g in results.items():
        label = "adaptive" if adaptive else "deterministic"
        print(
            f"{label:>13} {'on' if cc else 'off':>4} {g['non_hotspot']:10.3f} G "
            f"{g['hotspot']:7.2f} G {g['total']:7.1f} G"
        )

    det_off = results[(False, False)]
    ar_off = results[(True, False)]
    det_cc = results[(False, True)]
    ar_cc = results[(True, True)]

    # AR alone cannot rescue victims of end-node congestion: it gains
    # little over deterministic routing compared to what CC delivers.
    cc_gain = det_cc["non_hotspot"] - det_off["non_hotspot"]
    ar_gain = ar_off["non_hotspot"] - det_off["non_hotspot"]
    assert cc_gain > 2 * max(ar_gain, 0.0)
    # CC remains effective when AR is also enabled (they compose).
    assert ar_cc["non_hotspot"] > 1.5 * ar_off["non_hotspot"]
