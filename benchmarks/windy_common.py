"""Shared driver and shape assertions for the windy figures 5-8."""

from repro.experiments import run_windy_figure

P_VALUES = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)


def run_and_check(benchmark, scale, seed, b_fraction, *, paper_peak):
    """Run one figure's p-sweep, print its three panels, check shapes.

    Shape criteria (paper section V-B):

    * panel (a): CC-on non-hotspot rate beats CC-off wherever hotspot
      congestion exists, and never exceeds the analytic tmax;
    * panel (b): hotspots stay near the 13.6 Gbit/s sink cap, with a
      bounded CC penalty;
    * panel (c): for x < 100 % there are always permanent contributors,
      so CC wins at every p; for x = 100 % the improvement curve is
      ∩-shaped with ~neutral endpoints (no congestion to resolve at
      p = 0, no victims to rescue at p = 100).
    """
    from benchmarks.conftest import run_once

    fig = run_once(
        benchmark,
        run_windy_figure,
        b_fraction,
        scale,
        p_values=P_VALUES,
        seed=seed,
    )
    print()
    print(fig.format())
    peak = fig.peak_improvement()
    print(
        f"peak improvement {peak.improvement:.1f}x at p={peak.p * 100:.0f}% "
        f"(paper, 648 nodes: ~{paper_peak}x at p=60%)"
    )

    pts = {round(pt.p, 2): pt for pt in fig.points}
    pure_windy = b_fraction >= 1.0

    # Panel (a).
    for p, pt in pts.items():
        congestion_exists = (0.0 < p) if pure_windy else True
        if congestion_exists and p < 1.0:
            assert pt.on.non_hotspot > pt.off.non_hotspot, f"p={p}"
        assert pt.on.non_hotspot <= pt.tmax * 1.05 + 0.05, f"p={p}"

    # Panel (b): permanent hotspot load exists except pure-windy p=0.
    for p, pt in pts.items():
        if pure_windy and p == 0.0:
            continue
        assert pt.off.hotspot > 11.5, f"p={p}"
        assert pt.on.hotspot > 0.8 * pt.off.hotspot, f"p={p}"

    # Panel (c).
    interior = max(pt.improvement for p, pt in pts.items() if 0.0 < p < 1.0)
    assert interior > 1.3
    if pure_windy:
        # ∩ shape with ~neutral endpoints.
        assert 0.8 < pts[0.0].improvement < 1.3
        assert 0.8 < pts[1.0].improvement < 1.3
        assert interior > pts[0.0].improvement + 0.2
        assert interior > pts[1.0].improvement + 0.2
    else:
        # Permanent C-node congestion: CC wins wherever the B nodes add
        # hotspot load; at p=0 the C-node population alone may be thin
        # at reduced scale, so only "no harm" is required there.
        for p, pt in pts.items():
            floor = 1.15 if p > 0.0 else 0.9
            assert pt.improvement > floor, f"p={p}"
    return fig
