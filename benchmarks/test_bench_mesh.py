"""Beyond fat-trees: CC on a mesh (the paper's future-work question).

Not a paper artifact — the conclusion explicitly defers tori/meshes to
future research. This bench takes the first measurement: an end-node
hotspot in the corner of a 4x4 mesh with dimension-order routing, CC
off vs on with the same (bench-scaled) Table I parameters.
"""

from repro.core import CCManager, CCParams
from repro.engine import RngRegistry, Simulator
from repro.metrics import Collector, group_rates
from repro.network import Network, NetworkConfig
from repro.topology import mesh
from repro.traffic import BNodeSource, FixedRateSource, HotspotSchedule

from benchmarks.conftest import run_once

MS = 1e6


def _run(cc: bool, seed: int):
    topo = mesh([4, 4])
    n = topo.n_hosts
    sim = Simulator()
    rng = RngRegistry(seed)
    col = Collector(n, warmup_ns=3 * MS)
    net = Network(sim, topo, NetworkConfig(), collector=col)
    if cc:
        CCManager(
            CCParams.paper_table1().with_(cct_slope=0.5, marking_rate=3)
        ).install(net)
    schedule = HotspotSchedule([0])
    for node in range(1, n):
        if node in (5, 1):
            continue  # reserved for the victim pair
        gen = BNodeSource(node, n, 1.0, rng.stream("gen", node),
                          hotspot=lambda: schedule.target(0))
        gen.bind(net.hcas[node])
        net.hcas[node].attach_generator(gen)
    victim = FixedRateSource(5, n, 1, 13.5, rng.stream("victim"))
    victim.bind(net.hcas[5])
    net.hcas[5].attach_generator(victim)
    net.run(until=8 * MS)
    groups = group_rates(col.all_rx_rates_gbps(8 * MS), [0])
    groups["victim"] = col.rx_rate_gbps(1, 8 * MS)
    return groups


def test_bench_mesh_hotspot(benchmark, seed):
    def both():
        return _run(False, seed), _run(True, seed)

    off, on = run_once(benchmark, both)
    print("\nCorner hotspot on a 4x4 mesh (dimension-order routing)")
    print(f"{'':8} {'hotspot':>9} {'victim':>9} {'total':>9}")
    print(f"{'CC off':8} {off['hotspot']:7.2f} G {off['victim']:7.2f} G {off['total']:7.1f} G")
    print(f"{'CC on':8} {on['hotspot']:7.2f} G {on['victim']:7.2f} G {on['total']:7.1f} G")

    # The mechanism transfers to the mesh: the hotspot stays busy and
    # the victim recovers a large share of its injection rate.
    assert off["hotspot"] > 12.0
    assert on["hotspot"] > 0.8 * off["hotspot"]
    assert on["victim"] > 1.5 * off["victim"]
    assert on["total"] > off["total"]
