"""Table I — the CC parameter values.

Table I is configuration, not measurement; this bench (a) asserts the
library's ``paper_table1`` matches the published values exactly and
(b) measures the cost of building the Congestion Control Table the
parameters imply (a real setup-path cost on the CC manager).
"""

from repro.core import CCParams, build_cct


PAPER_TABLE_1 = {
    "ccti_increase": 1,
    "ccti_limit": 127,
    "ccti_min": 0,
    "ccti_timer": 150,
    "threshold": 15,
    "marking_rate": 0,
    "packet_size": 0,
}


def test_bench_table1_values(benchmark):
    params = benchmark(CCParams.paper_table1)
    for field, expected in PAPER_TABLE_1.items():
        assert getattr(params, field) == expected, field
    print("\nTable I -- CC parameter values (reproduced exactly)")
    for field, expected in PAPER_TABLE_1.items():
        print(f"  {field:15s} {expected}")


def test_bench_cct_population(benchmark):
    cct = benchmark(build_cct, 127, shape="linear", slope=2.0)
    assert len(cct) == 128
    assert cct[0] == 0.0
    assert all(a <= b for a, b in zip(cct, cct[1:]))
