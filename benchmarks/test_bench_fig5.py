"""Figure 5 — windy forest with 25 % B nodes, p swept 0..100 %.

Paper (648 nodes): CC lifts the non-hotspot receive rate toward tmax at
every p (e.g. 0.55 -> 4.75 Gbit/s at p=0), hotspots stay at ~13.3-13.6,
and total throughput improves by 6.0x (p=100) to 8.7x (p=60).
"""

from benchmarks.windy_common import run_and_check


def test_bench_fig5_windy_25pct(benchmark, scale, seed):
    run_and_check(benchmark, scale, seed, 0.25, paper_peak=8.7)
