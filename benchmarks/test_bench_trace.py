"""Tracing overhead benchmark: the null-hook fast path must be free.

Runs the quick-scale Table II campaign three ways —

* **untraced** — tracing off, exercising the disabled fast path (one
  attribute load + ``is not None`` branch per instrumented event);
* **traced** — digest + online audit enabled for every cell;
* and compares both against the recorded parallel-bench baseline
  (``BENCH_parallel.json``), which predates the trace layer entirely.

The untraced run must stay within the ISSUE's 3% budget of the
pre-instrumentation baseline (with generous slack for timer jitter on
shared CI hosts); the traced run must produce digests for every cell,
zero auditor violations, and rows identical to the untraced run. The
datapoint lands in ``BENCH_trace.json`` at the repository root.
"""

import json
import os
import time

from repro.experiments import run_table2
from repro.experiments.runner import TracedRun

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DATAPOINT_PATH = os.path.join(REPO_ROOT, "BENCH_trace.json")
BASELINE_PATH = os.path.join(REPO_ROOT, "BENCH_parallel.json")


def test_bench_trace_overhead(benchmark, scale, seed):
    t0 = time.perf_counter()
    untraced = run_table2(scale, seed=seed, jobs=1)
    untraced_seconds = time.perf_counter() - t0

    def traced_run():
        t = time.perf_counter()
        result = run_table2(scale, seed=seed, jobs=1, run_fn=TracedRun())
        return result, time.perf_counter() - t

    traced, traced_seconds = benchmark.pedantic(
        traced_run, rounds=1, iterations=1
    )

    # Tracing must observe, never perturb: identical rows either way.
    assert traced.rows() == untraced.rows()
    cells = [
        traced.baseline_no_cc, traced.baseline_cc,
        traced.hotspots_no_cc, traced.hotspots_cc,
    ]
    assert all(c.trace_digest for c in cells)
    assert all(c.trace_violations == 0 for c in cells)
    assert len({c.trace_digest for c in cells}) == len(cells)

    baseline_seconds = None
    if scale.name == "quick" and os.path.exists(BASELINE_PATH):
        with open(BASELINE_PATH) as fh:
            baseline_seconds = json.load(fh).get("jobs1_seconds")

    datapoint = {
        "benchmark": "table2_trace_overhead",
        "scale": scale.name,
        "seed": seed,
        "untraced_seconds": round(untraced_seconds, 3),
        "traced_seconds": round(traced_seconds, 3),
        "traced_overhead": round(traced_seconds / untraced_seconds, 3),
        "baseline_jobs1_seconds": baseline_seconds,
        "trace_records": sum(c.trace_records for c in cells),
    }
    with open(DATAPOINT_PATH, "w") as fh:
        json.dump(datapoint, fh, indent=2)
        fh.write("\n")

    print()
    print(f"Table II ({scale.name}) tracing off {untraced_seconds:.2f}s, "
          f"on {traced_seconds:.2f}s "
          f"({datapoint['traced_overhead']:.2f}x, "
          f"{datapoint['trace_records']} records)")

    if baseline_seconds is not None:
        # The <3% instrumentation budget, with slack for host jitter:
        # single-round wall-clock on shared CI varies far more than 3%,
        # so the gate fails only on a blowup a branch can't explain.
        assert untraced_seconds < 1.25 * baseline_seconds, (
            f"tracing-off run {untraced_seconds:.2f}s vs recorded "
            f"baseline {baseline_seconds:.2f}s — null-hook fast path "
            "regressed"
        )
    # Full digest+audit tracing streams ~1M records for this campaign;
    # anything past 3x means the hot-path hooks got expensive.
    assert traced_seconds < 3.0 * untraced_seconds
