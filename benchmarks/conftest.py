"""Benchmark harness configuration.

Every table/figure of the paper has a bench here that regenerates it
and prints the corresponding rows/series. Experiments are full
discrete-event simulations, so each bench runs a single round via
``benchmark.pedantic`` — the timing numbers report experiment cost; the
printed tables report the reproduced results.

Scale selection: set ``REPRO_BENCH_SCALE=default`` (longer runs) or
``REPRO_BENCH_SCALE=paper`` (full 648-node topology, minutes per point)
— the default is ``quick``.

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the tables.
"""

import os

import pytest

from repro.experiments.config import SCALES


@pytest.fixture(scope="session")
def scale():
    name = os.environ.get("REPRO_BENCH_SCALE", "quick")
    if name not in SCALES:
        raise ValueError(f"REPRO_BENCH_SCALE must be one of {sorted(SCALES)}")
    return SCALES[name]


@pytest.fixture(scope="session")
def seed():
    return int(os.environ.get("REPRO_BENCH_SEED", "7"))


def run_once(benchmark, fn, *args, **kwargs):
    """Run an expensive experiment exactly once under the benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
