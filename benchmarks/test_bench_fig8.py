"""Figure 8 — pure windy forest (100 % B nodes), p swept 0..100 %.

Paper (648 nodes): at p=0 CC costs ~3 % (no real congestion to
resolve); at p=100 CC is neutral (no victims to rescue); in between the
improvement peaks at p=60 with a seventeen-fold increase - the paper's
headline number.
"""

from benchmarks.windy_common import run_and_check


def test_bench_fig8_windy_100pct(benchmark, scale, seed):
    fig = run_and_check(benchmark, scale, seed, 1.00, paper_peak=17.0)
    # The paper's "negligible penalty" claim at p=0: bounded CC cost on
    # the (purely uniform) traffic.
    p0 = fig.points[0]
    assert p0.on.non_hotspot > 0.9 * p0.off.non_hotspot
