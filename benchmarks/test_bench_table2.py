"""Table II — performance numbers for the silent forest (Gbit/s).

Paper values (648 nodes, 8 hotspots, 80 % C / 20 % V):

    no hotspots, no CC      avg rcv          2.699
    no hotspots, CC on      avg rcv          2.701
    hotspots, no CC         hotspot avg     13.602
                            non-hotspot      0.168
    hotspots, CC on         hotspot avg     13.279
                            non-hotspot      2.246
    total throughput        without CC     216.073
                            with CC       1543.793   (7.1x)

Shape criteria checked at any scale: the uniform baseline is unharmed
by CC; hotspots saturate near the 13.6 Gbit/s sink cap with and without
CC (small CC penalty allowed); the non-hotspot rate collapses without
CC and recovers most of the baseline with CC; total throughput improves.
"""

from repro.experiments import run_table2

from benchmarks.conftest import run_once


def test_bench_table2(benchmark, scale, seed):
    result = run_once(benchmark, run_table2, scale, seed=seed)
    print()
    print(result.format())
    rows = result.rows()

    baseline = rows["no_hotspots_no_cc_avg"]
    # CC is harmless on a lightly loaded network (paper: 2.699 vs 2.701).
    assert rows["no_hotspots_cc_avg"] > 0.97 * baseline

    # Hotspots saturate near the sink cap; CC costs only a small share.
    assert rows["hotspots_no_cc_hotspot_avg"] > 12.0
    assert rows["hotspots_cc_hotspot_avg"] > 0.85 * rows["hotspots_no_cc_hotspot_avg"]

    # The collapse and the recovery.
    assert rows["hotspots_no_cc_non_hotspot_avg"] < 0.5 * baseline
    assert (
        rows["hotspots_cc_non_hotspot_avg"]
        > 2.0 * rows["hotspots_no_cc_non_hotspot_avg"]
    )
    assert rows["hotspots_cc_non_hotspot_avg"] > 0.8 * baseline

    # Total network throughput improves by enabling CC.
    assert result.improvement > 1.3
