"""Event-kernel benchmark: heap vs calendar queue, micro and macro.

Two measurements land in ``BENCH_kernel.json`` at the repository root:

* **churn microbench** — hold a deep backlog (3000 pending events) and
  measure pop+push pairs. This is the regime the calendar queue exists
  for: the binary heap pays O(log n) tuple comparisons per operation
  while the calendar's cost stays flat in the backlog depth. The bench
  *asserts* the calendar wins here; rounds are interleaved and the
  per-implementation minimum is taken, because single-core CI hosts
  show +/-15% wall-clock drift between back-to-back runs.
* **Table II macro runs** — one full quick-scale campaign per
  scheduler, recorded but deliberately *not* asserted: at quick scale
  the fabric holds only ~100 pending events (log2 ~ 7 C-speed
  comparisons), so the C-implemented ``heapq`` is at parity or ahead,
  and the measurement sits inside machine noise. The crossover to
  calendar territory comes with backlog depth (paper scale: radix-36,
  648 hosts).
"""

import json
import os
import time

from repro.engine.scheduler import SCHEDULERS
from repro.experiments import run_table2

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DATAPOINT_PATH = os.path.join(REPO_ROOT, "BENCH_kernel.json")

BACKLOG = 3000
OP_PAIRS = 60_000
ROUNDS = 5


def _noop() -> None:
    pass


def _churn_once(factory) -> float:
    """Seconds for OP_PAIRS pop+push pairs at a steady BACKLOG depth."""
    sched = factory()
    # Backlog spread over ~40 calendar buckets' worth of horizon, with
    # deterministic sub-bucket jitter (no RNG: keep rounds comparable).
    horizon = 10_000.0
    for seq in range(BACKLOG):
        t = (seq * 7919) % 10_000 + (seq % 97) / 97.0
        sched.push(t, seq, _noop, None)
    seq = BACKLOG
    push = sched.push
    pop = sched.pop
    t0 = time.perf_counter()
    for _ in range(OP_PAIRS):
        entry = pop(None)
        t = entry[0]
        push(t + horizon + (seq % 89) / 89.0, seq, _noop, None)
        seq += 1
    elapsed = time.perf_counter() - t0
    assert len(sched) == BACKLOG
    return elapsed


def _interleaved_min(factories: dict) -> dict:
    """Best-of-ROUNDS per impl, rounds interleaved to cancel drift."""
    best = {name: float("inf") for name in factories}
    for _ in range(ROUNDS):
        for name, factory in factories.items():
            best[name] = min(best[name], _churn_once(factory))
    return best


def test_bench_kernel(benchmark, scale, seed):
    churn = benchmark.pedantic(
        _interleaved_min, args=(dict(SCHEDULERS),), rounds=1, iterations=1
    )
    ns_per_pair = {
        name: secs / OP_PAIRS * 1e9 for name, secs in churn.items()
    }

    macro = {}
    for name in SCHEDULERS:
        os.environ["REPRO_SCHEDULER"] = name
        try:
            t0 = time.perf_counter()
            run_table2(scale, seed=seed)
            macro[name] = round(time.perf_counter() - t0, 3)
        finally:
            os.environ.pop("REPRO_SCHEDULER", None)

    datapoint = {
        "benchmark": "event_kernel",
        "churn_backlog_events": BACKLOG,
        "churn_ns_per_op_pair": {
            name: round(v, 1) for name, v in ns_per_pair.items()
        },
        "table2_seconds": {
            "scale": scale.name,
            "seed": seed,
            **macro,
        },
        "notes": (
            "churn = interleaved best-of-5 at a 3000-event backlog, the "
            "deep-queue regime the calendar targets; table2 quick holds "
            "~100 pending events, where C heapq is at parity and the "
            "numbers sit inside single-core machine noise (~15%)"
        ),
    }
    with open(DATAPOINT_PATH, "w") as fh:
        json.dump(datapoint, fh, indent=2)
        fh.write("\n")

    print()
    print("churn ns/op-pair: " + ", ".join(
        f"{name} {v:.0f}" for name, v in ns_per_pair.items()
    ))
    print("table2 ({}): ".format(scale.name) + ", ".join(
        f"{name} {secs:.2f}s" for name, secs in macro.items()
    ))

    # The one enforced claim: at depth, the calendar beats the heap.
    assert ns_per_pair["calendar"] < ns_per_pair["heapq"], (
        "calendar queue lost its deep-backlog advantage: "
        f"{ns_per_pair['calendar']:.0f} vs {ns_per_pair['heapq']:.0f} "
        "ns per pop+push pair at a 3000-event backlog"
    )
