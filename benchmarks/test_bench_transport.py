"""Transport overhead benchmark: the disabled path must stay free.

Runs the quick-scale Table II campaign twice —

* **transport off** — the default, exercising the disabled fast path
  (one ``is not None`` branch per packet event in the HCA hot loop);
* **transport on** — full Reliable Connection machinery: PSN
  sequencing, receive-side ordering checks, coalesced acks, and a
  retransmission timer per active flow.

The transport-off run must stay within the same generous wall-clock
envelope as the trace bench's untraced run (``BENCH_trace.json``) —
the layer predates this bench, so any slowdown there is the new branch
and nothing else. The transport-on run is recorded for the record; on
a clean fabric it must not retransmit at all. The datapoint lands in
``BENCH_transport.json`` at the repository root.
"""

import json
import os
import time

from repro.experiments import run_table2
from repro.transport import TransportConfig

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DATAPOINT_PATH = os.path.join(REPO_ROOT, "BENCH_transport.json")
BASELINE_PATH = os.path.join(REPO_ROOT, "BENCH_trace.json")


def test_bench_transport_overhead(benchmark, scale, seed):
    t0 = time.perf_counter()
    plain = run_table2(scale, seed=seed, jobs=1)
    plain_seconds = time.perf_counter() - t0

    def transport_run():
        t = time.perf_counter()
        result = run_table2(
            scale, seed=seed, jobs=1, transport=TransportConfig()
        )
        return result, time.perf_counter() - t

    with_rc, rc_seconds = benchmark.pedantic(
        transport_run, rounds=1, iterations=1
    )

    cells = [
        with_rc.baseline_no_cc, with_rc.baseline_cc,
        with_rc.hotspots_no_cc, with_rc.hotspots_cc,
    ]
    # A clean lossless fabric never loses a byte: the reliable layer
    # must be pure bookkeeping here — no retransmissions, no failures.
    assert all(c.retx_packets == 0 for c in cells)
    assert all(c.failed_flows == 0 for c in cells)

    baseline_seconds = None
    if scale.name == "quick" and os.path.exists(BASELINE_PATH):
        with open(BASELINE_PATH) as fh:
            baseline_seconds = json.load(fh).get("untraced_seconds")

    datapoint = {
        "benchmark": "table2_transport_overhead",
        "scale": scale.name,
        "seed": seed,
        "transport_off_seconds": round(plain_seconds, 3),
        "transport_on_seconds": round(rc_seconds, 3),
        "transport_overhead": round(rc_seconds / plain_seconds, 3),
        "baseline_untraced_seconds": baseline_seconds,
    }
    with open(DATAPOINT_PATH, "w") as fh:
        json.dump(datapoint, fh, indent=2)
        fh.write("\n")

    print()
    print(f"Table II ({scale.name}) transport off {plain_seconds:.2f}s, "
          f"on {rc_seconds:.2f}s ({datapoint['transport_overhead']:.2f}x)")

    if baseline_seconds is not None:
        # Transport-off adds at most one branch per packet event; the
        # 1.25x slack absorbs shared-host timer jitter, so the gate
        # fails only on a blowup a branch can't explain.
        assert plain_seconds < 1.25 * baseline_seconds, (
            f"transport-off run {plain_seconds:.2f}s vs recorded "
            f"baseline {baseline_seconds:.2f}s — disabled-path hot "
            "loop regressed"
        )
    # The full RC machinery is real work — every coalesced ack is a
    # genuine packet traversing the fabric, roughly doubling the event
    # count — so ~2.5x is expected; past 3x the per-packet bookkeeping
    # itself got expensive.
    assert rc_seconds < 3.0 * plain_seconds
