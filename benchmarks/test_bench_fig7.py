"""Figure 7 — windy forest with 75 % B nodes, p swept 0..100 %.

Paper (648 nodes): same trends again; peak improvement grows while the
endpoint improvements shrink (the ∩ sharpens).
"""

from benchmarks.windy_common import run_and_check


def test_bench_fig7_windy_75pct(benchmark, scale, seed):
    run_and_check(benchmark, scale, seed, 0.75, paper_peak=12.0)
