"""Parallel-runtime benchmark: Table II wall-clock at jobs=1 vs jobs=4.

Runs the quick-scale Table II campaign serially and through the
supervised persistent-worker runtime, verifies the two produce
identical rows (the runtime's core determinism contract), and records
the wall-clock datapoint in ``BENCH_parallel.json`` at the repository
root.

With persistent workers each process is spawned once per campaign and
reused across cells — no per-cell fork/import cost — so on a host with
four real cores the four independent Table II phases must overlap into
at least a 1.5x speedup. The container CI runs on may be single-core;
there a speedup is physically impossible and the datapoint records the
supervision overhead instead (with the detected core count, so the
number is honest about what it measured).
"""

import json
import os
import time

from repro.experiments import run_table2

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DATAPOINT_PATH = os.path.join(REPO_ROOT, "BENCH_parallel.json")


def test_bench_parallel_table2(benchmark, scale, seed):
    t0 = time.perf_counter()
    serial = run_table2(scale, seed=seed, jobs=1)
    jobs1_seconds = time.perf_counter() - t0

    def pooled_run():
        t = time.perf_counter()
        result = run_table2(scale, seed=seed, jobs=4)
        return result, time.perf_counter() - t

    pooled, jobs4_seconds = benchmark.pedantic(
        pooled_run, rounds=1, iterations=1
    )

    # The determinism contract: the supervised pool reproduces the
    # serial rows exactly, cell by cell.
    assert pooled.rows() == serial.rows()
    assert pooled.hotspots_cc.rates_gbps == serial.hotspots_cc.rates_gbps

    cores = os.cpu_count() or 1
    datapoint = {
        "benchmark": "table2_parallel",
        "runtime": "supervised persistent workers (heartbeat 0.25s)",
        "scale": scale.name,
        "seed": seed,
        "cpu_count": cores,
        "jobs1_seconds": round(jobs1_seconds, 3),
        "jobs4_seconds": round(jobs4_seconds, 3),
        "speedup": round(jobs1_seconds / jobs4_seconds, 3),
        "notes": (
            "single round of the quick-scale Table II campaign; on "
            "cpu_count >= 4 the gate is speedup >= 1.5x, on a "
            "single-core host the runtime declines to spawn workers "
            "and jobs=4 degrades to in-process execution, so the "
            "number is machine noise, not parallelism"
        ),
    }
    with open(DATAPOINT_PATH, "w") as fh:
        json.dump(datapoint, fh, indent=2)
        fh.write("\n")

    print()
    print(f"Table II ({scale.name}) wall-clock: "
          f"jobs=1 {jobs1_seconds:.2f}s, jobs=4 {jobs4_seconds:.2f}s "
          f"({datapoint['speedup']:.2f}x on {cores} cores)")

    if cores >= 4:
        # Four independent phases on persistent workers across >=4
        # cores: anything under 1.5x means the runtime is eating the
        # parallelism (per-cell respawns, serialized dispatch, ...).
        assert jobs4_seconds * 1.5 <= jobs1_seconds
    else:
        # Starved hosts degrade to in-process execution; just require
        # the fallback not to be pathological.
        assert jobs4_seconds < 2.0 * jobs1_seconds
