"""Parallel-executor benchmark: Table II wall-clock at jobs=1 vs jobs=4.

Runs the quick-scale Table II campaign serially and through the
process pool, verifies the two produce identical rows (the executor's
core determinism contract), and records the wall-clock datapoint in
``BENCH_parallel.json`` at the repository root.

The container CI runs on may be single-core, so a speedup is asserted
only when enough cores are available; the datapoint (including the
detected core count) is recorded either way.
"""

import json
import os
import time

from repro.experiments import run_table2

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DATAPOINT_PATH = os.path.join(REPO_ROOT, "BENCH_parallel.json")


def test_bench_parallel_table2(benchmark, scale, seed):
    t0 = time.perf_counter()
    serial = run_table2(scale, seed=seed, jobs=1)
    jobs1_seconds = time.perf_counter() - t0

    def pooled_run():
        t = time.perf_counter()
        result = run_table2(scale, seed=seed, jobs=4)
        return result, time.perf_counter() - t

    pooled, jobs4_seconds = benchmark.pedantic(
        pooled_run, rounds=1, iterations=1
    )

    # The determinism contract: the pool reproduces the serial rows
    # exactly, cell by cell.
    assert pooled.rows() == serial.rows()
    assert pooled.hotspots_cc.rates_gbps == serial.hotspots_cc.rates_gbps

    cores = os.cpu_count() or 1
    datapoint = {
        "benchmark": "table2_parallel",
        "scale": scale.name,
        "seed": seed,
        "cpu_count": cores,
        "jobs1_seconds": round(jobs1_seconds, 3),
        "jobs4_seconds": round(jobs4_seconds, 3),
        "speedup": round(jobs1_seconds / jobs4_seconds, 3),
    }
    with open(DATAPOINT_PATH, "w") as fh:
        json.dump(datapoint, fh, indent=2)
        fh.write("\n")

    print()
    print(f"Table II ({scale.name}) wall-clock: "
          f"jobs=1 {jobs1_seconds:.2f}s, jobs=4 {jobs4_seconds:.2f}s "
          f"({datapoint['speedup']:.2f}x on {cores} cores)")

    if cores >= 4:
        # Four independent phases on >=4 cores should overlap well.
        assert jobs4_seconds < 0.75 * jobs1_seconds
    else:
        # On starved hosts just require the pool not to be pathological.
        assert jobs4_seconds < 3.0 * jobs1_seconds
