"""Ablations over the design choices the paper calls out.

The paper stresses that CC parameters require careful tuning (section
II / VI); these benches quantify the sensitivity around the Table I
operating point on the reproduction's default scenario (silent forest,
hotspots on), plus the QP-vs-SL operation mode comparison of section
II.2 and the Victim Mask of footnote 2.
"""

import pytest

from repro.core import CCParams
from repro.experiments import ExperimentConfig, run_experiment

from benchmarks.conftest import run_once


def silent_cfg(scale, seed, **params_kw):
    kw = {"cct_slope": scale.cct_slope, "marking_rate": scale.marking_rate}
    kw.update(params_kw)  # explicit overrides win over the scale defaults
    params = CCParams.paper_table1().with_(**kw)
    return ExperimentConfig(
        scale=scale, b_fraction=0.0, seed=seed, cc=True, cc_params=params
    )


class TestThresholdSweep:
    @pytest.mark.parametrize("weight", [1, 7, 15], ids=["w1", "w7", "w15"])
    def test_bench_threshold(self, benchmark, scale, seed, weight):
        res = run_once(
            benchmark, run_experiment, silent_cfg(scale, seed, threshold=weight)
        )
        print(
            f"\nthreshold weight {weight:2d}: non-hotspot {res.non_hotspot:.3f} "
            f"hotspot {res.hotspot:.2f} marks {res.fecn_marks}"
        )
        # Any non-zero weight must rescue the victims at least partially.
        assert res.non_hotspot > 1.0

    def test_bench_threshold_zero_disables_cc(self, benchmark, scale, seed):
        res = run_once(
            benchmark, run_experiment, silent_cfg(scale, seed, threshold=0)
        )
        print(f"\nthreshold weight 0: marks {res.fecn_marks} (CC inert)")
        assert res.fecn_marks == 0


class TestMarkingRateSweep:
    @pytest.mark.parametrize("mr", [0, 1, 7], ids=["mr0", "mr1", "mr7"])
    def test_bench_marking_rate(self, benchmark, scale, seed, mr):
        res = run_once(
            benchmark, run_experiment, silent_cfg(scale, seed, marking_rate=mr)
        )
        print(
            f"\nmarking rate {mr}: non-hotspot {res.non_hotspot:.3f} "
            f"hotspot {res.hotspot:.2f} marks {res.fecn_marks} becns {res.becns}"
        )
        assert res.non_hotspot > 1.0
        # Sparser marking -> fewer BECNs for the same congestion.
        assert res.becns > 0


class TestTimerSweep:
    @pytest.mark.parametrize("timer", [75, 150, 300], ids=["t75", "t150", "t300"])
    def test_bench_ccti_timer(self, benchmark, scale, seed, timer):
        res = run_once(
            benchmark, run_experiment, silent_cfg(scale, seed, ccti_timer=timer)
        )
        print(
            f"\nccti timer {timer} ({timer * 1.024:.0f} us): "
            f"non-hotspot {res.non_hotspot:.3f} hotspot {res.hotspot:.2f}"
        )
        assert res.non_hotspot > 1.0


class TestQpVsSl:
    def test_bench_qp_vs_sl(self, benchmark, scale, seed):
        def both():
            qp = run_experiment(silent_cfg(scale, seed, cc_mode="qp"))
            sl = run_experiment(silent_cfg(scale, seed, cc_mode="sl"))
            return qp, sl

        qp, sl = run_once(benchmark, both)
        print(
            f"\nQP-level: non-hotspot {qp.non_hotspot:.3f} total {qp.total:.1f}\n"
            f"SL-level: non-hotspot {sl.non_hotspot:.3f} total {sl.total:.1f}"
        )
        # Section II.2: SL-level CC throttles innocent flows sharing the
        # SL, hurting total performance relative to QP-level operation.
        assert qp.total > sl.total


class TestVictimMask:
    def test_bench_victim_mask(self, benchmark, scale, seed):
        def both():
            on = run_experiment(silent_cfg(scale, seed, victim_mask_hca_ports=True))
            off = run_experiment(silent_cfg(scale, seed, victim_mask_hca_ports=False))
            return on, off

        on, off = run_once(benchmark, both)
        print(
            f"\nvictim mask on : non-hotspot {on.non_hotspot:.3f} marks {on.fecn_marks}\n"
            f"victim mask off: non-hotspot {off.non_hotspot:.3f} marks {off.fecn_marks}"
        )
        # With the mask the end-node congestion roots mark reliably.
        assert on.non_hotspot >= 0.9 * off.non_hotspot


class TestCctSlopeSweep:
    @pytest.mark.parametrize("slope", [0.25, 0.5, 2.0], ids=["s025", "s05", "s2"])
    def test_bench_cct_slope(self, benchmark, scale, seed, slope):
        res = run_once(
            benchmark, run_experiment, silent_cfg(scale, seed, cct_slope=slope)
        )
        print(
            f"\ncct slope {slope}: non-hotspot {res.non_hotspot:.3f} "
            f"hotspot {res.hotspot:.2f}"
        )
        assert res.non_hotspot > 1.0
