"""Figure 10 — moving windy congestion trees (100 % B nodes).

Paper (648 nodes, lifetimes 10 ms -> 1 ms, p = 30/60/90 %): enabling CC
improves the all-node receive rate at every lifetime, with the
improvement shrinking as the hotspot lifetime shrinks and the traffic
pattern itself alleviates congestion.
"""

import pytest

from repro.experiments import run_moving_figure

from benchmarks.conftest import run_once


@pytest.mark.parametrize("p", [0.3, 0.6, 0.9], ids=["p30", "p60", "p90"])
def test_bench_fig10_moving_windy(benchmark, scale, seed, p):
    fig = run_once(
        benchmark,
        run_moving_figure,
        scale,
        b_fraction=1.0,
        p=p,
        label=f"100% B, p={p:.0%} (paper fig 10)",
        seed=seed,
    )
    print()
    print(fig.format())
    pts = fig.points
    for pt in pts:
        assert pt.improvement > 0.95, f"lifetime {pt.lifetime_ns}"
    # CC's edge at the longest lifetime exceeds the shortest lifetime's.
    assert pts[0].improvement >= pts[-1].improvement - 0.05
    # Somewhere in the sweep CC wins clearly.
    assert max(pt.improvement for pt in pts) > 1.05
