"""Setup shim.

The offline environment has setuptools but no `wheel` package, so
PEP 517 editable installs fail during metadata generation. This shim
lets ``pip install -e . --no-build-isolation --no-use-pep517`` (and
plain ``pip install -e .`` via pip's automatic legacy fallback on some
versions) work without network access.
"""

from setuptools import setup

setup()
